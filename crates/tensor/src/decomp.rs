//! Tensor factorizations: QR / SVD / randomized SVD across a bipartition of
//! the axes. These wrappers are the glue between the matrix factorizations in
//! `koala-linalg` and the site tensors manipulated by the MPS/PEPS layers.

use crate::tensor::{Result, Tensor, TensorError};
use koala_linalg::{gram_qr, qr, rsvd, svd, LinearOp, Matrix, RsvdOptions, Svd};
use rand::Rng;

/// Truncation policy for factorizations that produce a new bond.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truncation {
    /// Keep at most this many singular values (None = no cap).
    pub max_rank: Option<usize>,
    /// Drop singular values below `rel_tol * s_max` (None = keep all).
    pub rel_tol: Option<f64>,
}

impl Truncation {
    /// No truncation at all.
    pub fn none() -> Self {
        Truncation { max_rank: None, rel_tol: None }
    }

    /// Keep at most `k` singular values.
    pub fn max_rank(k: usize) -> Self {
        Truncation { max_rank: Some(k), rel_tol: None }
    }

    /// Keep at most `k` singular values and drop anything below `rel_tol * s_max`.
    pub fn rank_and_tol(k: usize, rel_tol: f64) -> Self {
        Truncation { max_rank: Some(k), rel_tol: Some(rel_tol) }
    }

    /// Number of singular values to keep from a descending spectrum.
    pub fn keep(&self, s: &[f64]) -> usize {
        let mut k = s.len();
        if let Some(max) = self.max_rank {
            k = k.min(max.max(1));
        }
        if let Some(tol) = self.rel_tol {
            let cutoff = s.first().copied().unwrap_or(0.0) * tol;
            let significant = s.iter().take_while(|&&x| x > cutoff).count();
            k = k.min(significant.max(1));
        }
        k.max(1).min(s.len().max(1))
    }
}

/// Result of a split-and-truncate SVD of a tensor across an axis bipartition.
#[derive(Debug, Clone)]
pub struct SplitSvd {
    /// Left factor with shape `[row_dims..., k]`.
    pub u: Tensor,
    /// Singular values (descending).
    pub s: Vec<f64>,
    /// Right factor with shape `[k, col_dims...]`.
    pub vh: Tensor,
    /// Frobenius norm of the discarded singular values.
    pub truncation_error: f64,
}

impl SplitSvd {
    /// Absorb `sqrt(s)` into both factors, returning `(L, R)` with the bond as
    /// the last axis of `L` and the first axis of `R`.
    pub fn absorb_split(&self) -> (Tensor, Tensor) {
        let sq: Vec<f64> = self.s.iter().map(|x| x.sqrt()).collect();
        (scale_last_axis(&self.u, &sq), scale_first_axis(&self.vh, &sq))
    }

    /// Absorb the singular values entirely into the left factor.
    pub fn absorb_left(&self) -> (Tensor, Tensor) {
        (scale_last_axis(&self.u, &self.s), self.vh.clone())
    }

    /// Absorb the singular values entirely into the right factor.
    pub fn absorb_right(&self) -> (Tensor, Tensor) {
        (self.u.clone(), scale_first_axis(&self.vh, &self.s))
    }
}

/// Multiply slices along the last axis by `s[j]`. The realness hint survives
/// for finite scale factors (singular values absorbed into SVD factors), so
/// truncated splits of real tensors keep the whole pipeline on the real GEMM
/// kernel.
pub fn scale_last_axis(t: &Tensor, s: &[f64]) -> Tensor {
    let Some(&last) = t.shape().last() else {
        return t.clone(); // rank-0: no axis to scale
    };
    assert!(s.len() >= last);
    let keep_real = t.is_real() && s[..last].iter().all(|x| x.is_finite());
    let mut out = t.clone();
    for (i, v) in out.data_mut().iter_mut().enumerate() {
        *v = v.scale(s[i % last]);
    }
    if keep_real {
        out.assume_real();
    }
    out
}

/// Multiply slices along the first axis by `s[i]` (hint rule as in
/// [`scale_last_axis`]).
pub fn scale_first_axis(t: &Tensor, s: &[f64]) -> Tensor {
    let Some(&first) = t.shape().first() else {
        return t.clone(); // rank-0: no axis to scale
    };
    assert!(s.len() >= first);
    let keep_real = t.is_real() && s[..first].iter().all(|x| x.is_finite());
    let block: usize = t.shape()[1..].iter().product();
    let mut out = t.clone();
    for (i, v) in out.data_mut().iter_mut().enumerate() {
        *v = v.scale(s[i / block.max(1)]);
    }
    if keep_real {
        out.assume_real();
    }
    out
}

/// Permute `row_axes` to the front of the tensor and return the permutation
/// together with the resulting row/column dimension lists.
fn split_permutation(
    t: &Tensor,
    row_axes: &[usize],
) -> Result<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let ndim = t.ndim();
    for &a in row_axes {
        if a >= ndim {
            return Err(TensorError::InvalidAxes {
                context: format!("split: axis {a} out of range for rank {ndim}"),
            });
        }
    }
    let mut seen = vec![false; ndim];
    for &a in row_axes {
        if seen[a] {
            return Err(TensorError::InvalidAxes { context: format!("split: duplicate axis {a}") });
        }
        seen[a] = true;
    }
    let col_axes: Vec<usize> = (0..ndim).filter(|a| !row_axes.contains(a)).collect();
    let mut perm = row_axes.to_vec();
    perm.extend_from_slice(&col_axes);
    let row_dims: Vec<usize> = row_axes.iter().map(|&a| t.dim(a)).collect();
    let col_dims: Vec<usize> = col_axes.iter().map(|&a| t.dim(a)).collect();
    Ok((perm, row_dims, col_dims))
}

/// Thin QR of the tensor viewed as a matrix with `row_axes` as rows.
///
/// Returns `(Q, R)` where `Q` has shape `[row_dims..., k]` and `R` has shape
/// `[k, col_dims...]`, with `k = min(prod(row_dims), prod(col_dims))`.
pub fn qr_split(t: &Tensor, row_axes: &[usize]) -> Result<(Tensor, Tensor)> {
    let (perm, row_dims, col_dims) = split_permutation(t, row_axes)?;
    let mat = t.permute(&perm)?.unfold(row_dims.len());
    let f = qr(&mat);
    let k = f.q.ncols();
    let q = Tensor::fold(&f.q, &row_dims, &[k])?;
    let r = Tensor::fold(&f.r, &[k], &col_dims)?;
    Ok((q, r))
}

/// Gram-matrix based QR (paper Algorithm 5) of a tensor across a bipartition.
/// Unlike [`qr_split`], the "R" factor is square with dimension
/// `prod(col_dims)`; this is exactly the shape needed by the reshape-avoiding
/// evolution algorithm where the small Gram matrix is formed over the bond
/// being updated.
pub fn gram_qr_split(t: &Tensor, row_axes: &[usize]) -> Result<(Tensor, Tensor)> {
    let (perm, row_dims, col_dims) = split_permutation(t, row_axes)?;
    let mat = t.permute(&perm)?.unfold(row_dims.len());
    let f = gram_qr(&mat)?;
    let k = f.r.nrows();
    let q = Tensor::fold(&f.q, &row_dims, &[k])?;
    let r = Tensor::fold(&f.r, &[k], &col_dims)?;
    Ok((q, r))
}

/// Truncated SVD of the tensor viewed as a matrix with `row_axes` as rows.
pub fn svd_split(t: &Tensor, row_axes: &[usize], truncation: Truncation) -> Result<SplitSvd> {
    let (perm, row_dims, col_dims) = split_permutation(t, row_axes)?;
    let mat = t.permute(&perm)?.unfold(row_dims.len());
    let f = svd(&mat)?;
    build_split_svd(f, &row_dims, &col_dims, truncation)
}

/// Randomized truncated SVD of the tensor across a bipartition (explicit
/// matrix sketching; the fully implicit network variant lives in `koala-peps`).
pub fn rsvd_split<R: Rng + ?Sized>(
    t: &Tensor,
    row_axes: &[usize],
    truncation: Truncation,
    n_iter: usize,
    rng: &mut R,
) -> Result<SplitSvd> {
    let (perm, row_dims, col_dims) = split_permutation(t, row_axes)?;
    let mat = t.permute(&perm)?.unfold(row_dims.len());
    let rank = truncation
        .max_rank
        .unwrap_or_else(|| mat.nrows().min(mat.ncols()))
        .min(mat.nrows().min(mat.ncols()))
        .max(1);
    let f = koala_linalg::rsvd_matrix(&mat, RsvdOptions { rank, oversample: 10, n_iter }, rng)?;
    build_split_svd(f, &row_dims, &col_dims, truncation)
}

/// Truncated SVD of an implicitly applied operator, folded back into tensors
/// whose row/column axis dimensions are given explicitly.
pub fn rsvd_split_implicit<O: LinearOp, R: Rng + ?Sized>(
    op: &O,
    row_dims: &[usize],
    col_dims: &[usize],
    truncation: Truncation,
    n_iter: usize,
    rng: &mut R,
) -> Result<SplitSvd> {
    let rows: usize = row_dims.iter().product();
    let cols: usize = col_dims.iter().product();
    if op.nrows() != rows || op.ncols() != cols {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "rsvd_split_implicit: operator is {}x{} but dims give {}x{}",
                op.nrows(),
                op.ncols(),
                rows,
                cols
            ),
        });
    }
    let rank = truncation.max_rank.unwrap_or_else(|| rows.min(cols)).min(rows.min(cols)).max(1);
    let f = rsvd(op, RsvdOptions { rank, oversample: 10, n_iter }, rng)?;
    build_split_svd(f, row_dims, col_dims, truncation)
}

fn build_split_svd(
    f: Svd,
    row_dims: &[usize],
    col_dims: &[usize],
    truncation: Truncation,
) -> Result<SplitSvd> {
    let keep = truncation.keep(&f.s);
    let err = f.truncation_error(keep);
    let t = f.truncated(keep);
    let k = t.s.len();
    let u = Tensor::fold(&t.u, row_dims, &[k])?;
    let vh = Tensor::fold(&t.vh, &[k], col_dims)?;
    Ok(SplitSvd { u, s: t.s, vh, truncation_error: err })
}

/// Reassemble a tensor from split factors `(U, s, Vh)` produced by
/// [`svd_split`]-style functions (used in tests).
pub fn reassemble_split(split: &SplitSvd) -> Result<Tensor> {
    let (l, r) = split.absorb_left();
    let bond_axis_l = l.ndim() - 1;
    crate::contract::tensordot(&l, &r, &[bond_axis_l], &[0])
}

/// Explicitly materialise a [`LinearOp`] as a matrix (testing utility).
pub fn materialize_op<O: LinearOp>(op: &O) -> Matrix {
    let eye = Matrix::identity(op.ncols());
    op.apply(&eye)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::tensordot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truncation_policy_keep_counts() {
        let s = [10.0, 5.0, 1.0, 1e-9, 1e-12];
        assert_eq!(Truncation::none().keep(&s), 5);
        assert_eq!(Truncation::max_rank(2).keep(&s), 2);
        assert_eq!(Truncation::max_rank(100).keep(&s), 5);
        assert_eq!(Truncation::rank_and_tol(100, 1e-8).keep(&s), 3);
        assert_eq!(Truncation::rank_and_tol(2, 1e-8).keep(&s), 2);
        assert_eq!(Truncation::max_rank(0).keep(&s), 1, "rank 0 clamps to 1");
    }

    #[test]
    fn qr_split_reconstructs() {
        let mut rng = StdRng::seed_from_u64(30);
        let t = Tensor::random(&[3, 4, 2, 5], &mut rng);
        let (q, r) = qr_split(&t, &[0, 2]).unwrap();
        assert_eq!(q.shape()[..2], [3, 2]);
        assert_eq!(r.shape()[1..], [4, 5]);
        // Contract back and compare against the permuted original.
        let rebuilt = tensordot(&q, &r, &[2], &[0]).unwrap();
        let expected = t.permute(&[0, 2, 1, 3]).unwrap();
        assert!(rebuilt.approx_eq(&expected, 1e-10));
        // Q isometric over its row axes.
        let qmat = q.unfold(2);
        assert!(qmat.has_orthonormal_cols(1e-10));
    }

    #[test]
    fn gram_qr_split_matches_qr_split_column_space() {
        let mut rng = StdRng::seed_from_u64(31);
        let t = Tensor::random(&[4, 3, 2], &mut rng);
        let (q, r) = gram_qr_split(&t, &[0, 1]).unwrap();
        let rebuilt = tensordot(&q, &r, &[2], &[0]).unwrap();
        assert!(rebuilt.approx_eq(&t, 1e-8));
    }

    #[test]
    fn svd_split_reconstructs_without_truncation() {
        let mut rng = StdRng::seed_from_u64(32);
        let t = Tensor::random(&[2, 3, 4], &mut rng);
        let f = svd_split(&t, &[0, 1], Truncation::none()).unwrap();
        assert!(f.truncation_error < 1e-12);
        let rebuilt = reassemble_split(&f).unwrap();
        assert!(rebuilt.approx_eq(&t, 1e-10));
    }

    #[test]
    fn svd_split_truncation_error_matches() {
        let mut rng = StdRng::seed_from_u64(33);
        let t = Tensor::random(&[4, 4, 4], &mut rng);
        let f = svd_split(&t, &[0], Truncation::max_rank(2)).unwrap();
        assert_eq!(f.s.len(), 2);
        let rebuilt = reassemble_split(&f).unwrap();
        let diff = rebuilt.sub(&t.permute(&[0, 1, 2]).unwrap()).unwrap().norm();
        assert!((diff - f.truncation_error).abs() < 1e-9);
    }

    #[test]
    fn svd_split_with_non_leading_row_axes() {
        let mut rng = StdRng::seed_from_u64(34);
        let t = Tensor::random(&[2, 5, 3], &mut rng);
        let f = svd_split(&t, &[2], Truncation::none()).unwrap();
        assert_eq!(f.u.shape()[0], 3);
        assert_eq!(f.vh.shape()[1..], [2, 5]);
        let rebuilt = reassemble_split(&f).unwrap();
        assert!(rebuilt.approx_eq(&t.permute(&[2, 0, 1]).unwrap(), 1e-10));
    }

    #[test]
    fn rsvd_split_agrees_with_exact_svd_for_low_rank() {
        let mut rng = StdRng::seed_from_u64(35);
        // Construct a tensor whose unfolding has rank 3.
        let left = Tensor::random(&[4, 2, 3], &mut rng);
        let right = Tensor::random(&[3, 6], &mut rng);
        let t = tensordot(&left, &right, &[2], &[0]).unwrap(); // 4 x 2 x 6
        let exact = svd_split(&t, &[0, 1], Truncation::max_rank(3)).unwrap();
        let approx = rsvd_split(&t, &[0, 1], Truncation::max_rank(3), 2, &mut rng).unwrap();
        for (a, b) in exact.s.iter().zip(approx.s.iter()) {
            assert!((a - b).abs() < 1e-8 * exact.s[0]);
        }
        let rebuilt = reassemble_split(&approx).unwrap();
        assert!(rebuilt.approx_eq(&t, 1e-8));
    }

    #[test]
    fn rsvd_split_implicit_checks_dimensions() {
        let mut rng = StdRng::seed_from_u64(36);
        let m = koala_linalg::Matrix::random(6, 4, &mut rng);
        let op = koala_linalg::MatOp::new(&m);
        assert!(
            rsvd_split_implicit(&op, &[2, 3], &[4], Truncation::max_rank(2), 1, &mut rng).is_ok()
        );
        assert!(rsvd_split_implicit(&op, &[5], &[4], Truncation::max_rank(2), 1, &mut rng).is_err());
    }

    #[test]
    fn splits_of_real_tensors_keep_the_realness_hint() {
        let mut rng = StdRng::seed_from_u64(38);
        let t = Tensor::random_real(&[3, 4, 2, 5], &mut rng);
        assert!(t.is_real());
        let (q, r) = qr_split(&t, &[0, 2]).unwrap();
        assert!(q.is_real() && r.is_real(), "QR split factors must carry the hint");
        let (gq, gr) = gram_qr_split(&t, &[0, 2]).unwrap();
        assert!(gq.is_real() && gr.is_real(), "Gram-QR split factors must carry the hint");
        let f = svd_split(&t, &[0, 1], Truncation::max_rank(3)).unwrap();
        assert!(f.u.is_real() && f.vh.is_real(), "SVD split factors must carry the hint");
        // The absorb variants scale by (finite) singular values: hint survives.
        for (l, rr) in [f.absorb_left(), f.absorb_right(), f.absorb_split()] {
            assert!(l.is_real() && rr.is_real(), "absorbed factors must carry the hint");
        }
        // A genuinely complex tensor must not leak the hint through a split.
        let z = Tensor::random(&[3, 4, 2], &mut rng);
        let fz = svd_split(&z, &[0], Truncation::none()).unwrap();
        assert!(!fz.u.is_real() || fz.u.to_matrix_2d().data().iter().all(|v| v.im == 0.0));
    }

    #[test]
    fn invalid_axes_are_rejected() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(qr_split(&t, &[3]).is_err());
        assert!(svd_split(&t, &[0, 0], Truncation::none()).is_err());
    }

    #[test]
    fn absorb_variants_reassemble_identically() {
        let mut rng = StdRng::seed_from_u64(37);
        let t = Tensor::random(&[3, 2, 4], &mut rng);
        let f = svd_split(&t, &[0], Truncation::none()).unwrap();
        for (l, r) in [f.absorb_left(), f.absorb_right(), f.absorb_split()] {
            let rebuilt = tensordot(&l, &r, &[l.ndim() - 1], &[0]).unwrap();
            assert!(rebuilt.approx_eq(&t, 1e-9));
        }
    }
}
