//! Einstein-summation style contraction of tensor networks.
//!
//! `einsum("abc,cd->abd", &[&t1, &t2])` mirrors the NumPy/Cyclops `einsum`
//! interface that the original Koala library is written against. The
//! implementation restricts index labels to the tensor-network case — every
//! label appears either once (free, must appear in the output) or exactly
//! twice across the operands (contracted) — and contracts operands pairwise
//! with a greedy smallest-intermediate heuristic.
//!
//! # Contraction plans and the plan cache
//!
//! Evaluating an einsum expression has two phases with very different costs
//! in steady state:
//!
//! 1. **Planning** — parsing the spec, validating labels against operand
//!    shapes, running the greedy pairwise ordering search (quadratic in the
//!    number of pending operands per step), and analysing, for every pairwise
//!    step, how each operand matricizes onto the GEMM (zero-copy, fused
//!    transpose, or one permutation — see `contract::PairPlan`).
//! 2. **Execution** — the GEMM calls themselves.
//!
//! PEPS evolution and expectation loops repeat a handful of specs thousands
//! of times with identical shapes, so phase 1 is pure overhead after the
//! first call. [`einsum`] and [`einsum_spec`] therefore delegate to a
//! process-wide memoised planner ([`crate::plan`]):
//!
//! * **Cache key.** The *parsed* specification (input label lists plus output
//!   labels) together with the exact operand shapes. Textually different
//!   specs that parse to the same labels (e.g. differing whitespace) share an
//!   entry; the same spec applied to different shapes gets distinct entries.
//!   [`einsum`] additionally memoises the string → [`EinsumSpec`] parse in a
//!   small side cache, so the steady-state string path performs no parsing
//!   at all.
//! * **Eviction policy.** A thread-safe LRU with a fixed capacity
//!   ([`crate::plan::DEFAULT_PLAN_CACHE_CAPACITY`] entries, adjustable via
//!   [`crate::plan::set_plan_cache_capacity`]). Each hit refreshes the
//!   entry's recency stamp; inserting into a full cache evicts the
//!   least-recently-used plan and bumps the eviction counter reported by
//!   [`crate::plan::plan_stats`].
//! * **Why plan reuse is safe across values but not shapes.** Every planning
//!   decision — the greedy pair selection (driven by intermediate *sizes*),
//!   the contracted-axis lists, the per-step matricization layouts, the
//!   trailing axis sums, and the final output permutation — is a pure
//!   function of the spec and the operand dimensions. Operand *values* never
//!   enter the planner, so a cached plan replayed on new tensors of the same
//!   shapes performs the identical arithmetic. Shapes, by contrast, change
//!   both the cost model (a different greedy order may win) and the layout
//!   decisions (which axis orders are zero-copy), so shapes are part of the
//!   key and [`crate::plan::Plan::execute`] rejects operands whose shapes
//!   differ from the ones the plan was built for.
//!
//! Cache accounting (hits / misses / evictions / residency) is exposed
//! through [`crate::plan::plan_stats`], which `koala-bench` uses to report
//! planner overhead (the `fig9_caching` binary).

use crate::plan::contraction_plan;
use crate::tensor::{Result, Tensor, TensorError};
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};

/// Parsed einsum specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EinsumSpec {
    /// Index labels for every input operand.
    pub inputs: Vec<Vec<char>>,
    /// Index labels of the output.
    pub output: Vec<char>,
}

/// Parse a specification such as `"abc,cd->abd"`.
///
/// The output part is mandatory (implicit output ordering is a common source
/// of silent bugs in tensor-network code, so we do not support it).
pub fn parse_spec(spec: &str) -> Result<EinsumSpec> {
    let spec: String = spec.chars().filter(|c| !c.is_whitespace()).collect();
    let (lhs, rhs) = spec.split_once("->").ok_or_else(|| TensorError::InvalidAxes {
        context: format!("einsum: spec '{spec}' is missing '->'"),
    })?;
    let inputs: Vec<Vec<char>> = lhs.split(',').map(|part| part.chars().collect()).collect();
    let output: Vec<char> = rhs.chars().collect();

    for part in inputs.iter().chain(std::iter::once(&output)) {
        for &c in part {
            if !c.is_ascii_alphabetic() {
                return Err(TensorError::InvalidAxes {
                    context: format!("einsum: invalid index label '{c}'"),
                });
            }
        }
    }
    // Labels within a single operand must be distinct (no internal traces).
    for (i, part) in inputs.iter().enumerate() {
        let mut sorted = part.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != part.len() {
            return Err(TensorError::InvalidAxes {
                context: format!("einsum: repeated label within operand {i} is not supported"),
            });
        }
    }
    // Output labels must be distinct and appear in the inputs.
    let mut out_sorted = output.clone();
    out_sorted.sort_unstable();
    out_sorted.dedup();
    if out_sorted.len() != output.len() {
        return Err(TensorError::InvalidAxes {
            context: "einsum: repeated label in output".to_string(),
        });
    }
    let mut counts: HashMap<char, usize> = HashMap::new();
    for part in &inputs {
        for &c in part {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    for &c in &output {
        if !counts.contains_key(&c) {
            return Err(TensorError::InvalidAxes {
                context: format!("einsum: output label '{c}' does not appear in any input"),
            });
        }
    }
    for (&c, &count) in &counts {
        let in_output = output.contains(&c);
        let valid = (count == 1) || (count == 2 && !in_output);
        if !valid {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "einsum: label '{c}' appears {count} time(s) in inputs and {} output — only \
                     tensor-network contractions (each label free once or contracted twice) are supported",
                    if in_output { "once in" } else { "not in" }
                ),
            });
        }
    }
    Ok(EinsumSpec { inputs, output })
}

/// Capacity of the spec-string parse memo behind [`einsum`].
const PARSE_CACHE_CAPACITY: usize = 256;

/// Memo of spec string → parsed spec, so the steady-state [`einsum`] string
/// path performs no parsing. Unbounded growth is prevented by clearing the
/// memo when it reaches capacity (workloads use a handful of distinct specs;
/// a full LRU would be overkill for ~100-byte entries).
static PARSE_CACHE: LazyLock<Mutex<HashMap<String, Arc<EinsumSpec>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Drop the memoised spec parses (used by [`crate::plan::clear_plan_cache`]
/// so "cold cache" benchmarks genuinely re-parse).
pub(crate) fn clear_parse_cache() {
    crate::lock_ignore_poison(&PARSE_CACHE).clear();
}

/// Parse `spec`, consulting the process-wide parse memo first.
fn parse_spec_cached(spec: &str) -> Result<Arc<EinsumSpec>> {
    if let Some(parsed) = crate::lock_ignore_poison(&PARSE_CACHE).get(spec) {
        return Ok(Arc::clone(parsed));
    }
    let parsed = Arc::new(parse_spec(spec)?);
    let mut cache = crate::lock_ignore_poison(&PARSE_CACHE);
    if cache.len() >= PARSE_CACHE_CAPACITY {
        cache.clear();
    }
    cache.insert(spec.to_string(), Arc::clone(&parsed));
    Ok(parsed)
}

/// Evaluate an einsum expression over the given operands.
///
/// Both the parse of `spec` and the contraction plan for the operand shapes
/// are memoised process-wide, so repeated calls with the same spec and shapes
/// pay only for the GEMMs (see the module docs).
pub fn einsum(spec: &str, operands: &[&Tensor]) -> Result<Tensor> {
    let parsed = parse_spec_cached(spec)?;
    einsum_spec(&parsed, operands)
}

/// Evaluate a pre-parsed einsum specification.
///
/// A thin wrapper over the memoised contraction planner: the plan for
/// `(spec, operand shapes)` is fetched from (or inserted into) the LRU cache
/// and executed. Hold the [`crate::plan::Plan`] from
/// [`crate::plan::contraction_plan`] directly to skip even the cache lookup
/// in a hot loop.
pub fn einsum_spec(spec: &EinsumSpec, operands: &[&Tensor]) -> Result<Tensor> {
    let shapes: Vec<&[usize]> = operands.iter().map(|t| t.shape()).collect();
    let plan = contraction_plan(spec, &shapes)?;
    plan.execute(operands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{tensordot, tensordot_naive};
    use koala_linalg::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_accepts_valid_specs() {
        let s = parse_spec("abc,cd->abd").unwrap();
        assert_eq!(s.inputs.len(), 2);
        assert_eq!(s.output, vec!['a', 'b', 'd']);
        assert!(parse_spec(" ab , bc -> ac ").is_ok());
    }

    #[test]
    fn parse_rejects_invalid_specs() {
        assert!(parse_spec("ab,bc").is_err(), "missing arrow");
        assert!(parse_spec("aab->ab").is_err(), "repeated label within operand");
        assert!(parse_spec("ab,bc->ad").is_err(), "output label not present");
        assert!(parse_spec("ab,ab,ab->").is_err(), "label appears three times");
        assert!(parse_spec("ab->aa").is_err(), "repeated output label");
        assert!(parse_spec("a1->a").is_err(), "non-alphabetic label");
    }

    #[test]
    fn matrix_multiplication() {
        let mut rng = StdRng::seed_from_u64(20);
        let a = Tensor::random(&[3, 4], &mut rng);
        let b = Tensor::random(&[4, 5], &mut rng);
        let c = einsum("ij,jk->ik", &[&a, &b]).unwrap();
        let expected = tensordot(&a, &b, &[1], &[0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn output_permutation_is_honoured() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::random(&[3, 4], &mut rng);
        let b = Tensor::random(&[4, 5], &mut rng);
        let c = einsum("ij,jk->ki", &[&a, &b]).unwrap();
        let expected = tensordot(&a, &b, &[1], &[0]).unwrap().permute(&[1, 0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn three_operand_chain() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Tensor::random(&[2, 3], &mut rng);
        let b = Tensor::random(&[3, 4], &mut rng);
        let c = Tensor::random(&[4, 2], &mut rng);
        let out = einsum("ij,jk,kl->il", &[&a, &b, &c]).unwrap();
        let ab = tensordot(&a, &b, &[1], &[0]).unwrap();
        let abc = tensordot(&ab, &c, &[1], &[0]).unwrap();
        assert!(out.approx_eq(&abc, 1e-11));
    }

    #[test]
    fn full_trace_network_to_scalar() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::random(&[3, 4], &mut rng);
        let b = Tensor::random(&[4, 3], &mut rng);
        let out = einsum("ij,ji->", &[&a, &b]).unwrap();
        assert_eq!(out.ndim(), 0);
        let prod = tensordot(&a, &b, &[1], &[0]).unwrap();
        let mut tr = c64(0.0, 0.0);
        for i in 0..3 {
            tr += prod.get(&[i, i]);
        }
        assert!(out.item().approx_eq(tr, 1e-11));
    }

    #[test]
    fn summed_free_index() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = Tensor::random(&[3, 5], &mut rng);
        let out = einsum("ij->i", &[&a]).unwrap();
        let expected = crate::contract::sum_axis(&a, 1).unwrap();
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn outer_product_of_disconnected_operands() {
        let mut rng = StdRng::seed_from_u64(25);
        let a = Tensor::random(&[2], &mut rng);
        let b = Tensor::random(&[3], &mut rng);
        let out = einsum("i,j->ij", &[&a, &b]).unwrap();
        assert!(out.approx_eq(&a.outer(&b), 1e-12));
    }

    #[test]
    fn tensor_network_star_contraction() {
        // A small star-shaped network exercising the greedy ordering:
        // center tensor contracted with three leaf tensors.
        let mut rng = StdRng::seed_from_u64(26);
        let center = Tensor::random(&[2, 3, 4], &mut rng);
        let la = Tensor::random(&[2, 5], &mut rng);
        let lb = Tensor::random(&[3, 6], &mut rng);
        let lc = Tensor::random(&[4, 7], &mut rng);
        let out = einsum("abc,ax,by,cz->xyz", &[&center, &la, &lb, &lc]).unwrap();
        assert_eq!(out.shape(), &[5, 6, 7]);
        // Cross-check against a naive sequence of contractions.
        let step1 = tensordot_naive(&center, &la, &[0], &[0]).unwrap(); // b c x
        let step2 = tensordot_naive(&step1, &lb, &[0], &[0]).unwrap(); // c x y
        let step3 = tensordot_naive(&step2, &lc, &[0], &[0]).unwrap(); // x y z
        assert!(out.approx_eq(&step3, 1e-10));
    }

    #[test]
    fn operand_count_and_shape_validation() {
        let a = Tensor::zeros(&[2, 2]);
        assert!(einsum("ij,jk->ik", &[&a]).is_err());
        assert!(einsum("ijk->ijk", &[&a]).is_err());
        let b = Tensor::zeros(&[3, 2]);
        assert!(einsum("ij,jk->ik", &[&a, &b]).is_err(), "label j has dims 2 and 3");
    }
}
