//! Einstein-summation style contraction of tensor networks.
//!
//! `einsum("abc,cd->abd", &[&t1, &t2])` mirrors the NumPy/Cyclops `einsum`
//! interface that the original Koala library is written against. The
//! implementation restricts index labels to the tensor-network case — every
//! label appears either once (free, must appear in the output) or exactly
//! twice across the operands (contracted) — and contracts operands pairwise
//! with a greedy smallest-intermediate heuristic.

use crate::contract::{sum_axis, tensordot};
use crate::tensor::{Result, Tensor, TensorError};
use std::collections::HashMap;

/// Parsed einsum specification.
#[derive(Debug, Clone)]
pub struct EinsumSpec {
    /// Index labels for every input operand.
    pub inputs: Vec<Vec<char>>,
    /// Index labels of the output.
    pub output: Vec<char>,
}

/// Parse a specification such as `"abc,cd->abd"`.
///
/// The output part is mandatory (implicit output ordering is a common source
/// of silent bugs in tensor-network code, so we do not support it).
pub fn parse_spec(spec: &str) -> Result<EinsumSpec> {
    let spec: String = spec.chars().filter(|c| !c.is_whitespace()).collect();
    let (lhs, rhs) = spec.split_once("->").ok_or_else(|| TensorError::InvalidAxes {
        context: format!("einsum: spec '{spec}' is missing '->'"),
    })?;
    let inputs: Vec<Vec<char>> = lhs.split(',').map(|part| part.chars().collect()).collect();
    let output: Vec<char> = rhs.chars().collect();

    for part in inputs.iter().chain(std::iter::once(&output)) {
        for &c in part {
            if !c.is_ascii_alphabetic() {
                return Err(TensorError::InvalidAxes {
                    context: format!("einsum: invalid index label '{c}'"),
                });
            }
        }
    }
    // Labels within a single operand must be distinct (no internal traces).
    for (i, part) in inputs.iter().enumerate() {
        let mut sorted = part.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != part.len() {
            return Err(TensorError::InvalidAxes {
                context: format!("einsum: repeated label within operand {i} is not supported"),
            });
        }
    }
    // Output labels must be distinct and appear in the inputs.
    let mut out_sorted = output.clone();
    out_sorted.sort_unstable();
    out_sorted.dedup();
    if out_sorted.len() != output.len() {
        return Err(TensorError::InvalidAxes {
            context: "einsum: repeated label in output".to_string(),
        });
    }
    let mut counts: HashMap<char, usize> = HashMap::new();
    for part in &inputs {
        for &c in part {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    for &c in &output {
        if !counts.contains_key(&c) {
            return Err(TensorError::InvalidAxes {
                context: format!("einsum: output label '{c}' does not appear in any input"),
            });
        }
    }
    for (&c, &count) in &counts {
        let in_output = output.contains(&c);
        let valid = (count == 1) || (count == 2 && !in_output);
        if !valid {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "einsum: label '{c}' appears {count} time(s) in inputs and {} output — only \
                     tensor-network contractions (each label free once or contracted twice) are supported",
                    if in_output { "once in" } else { "not in" }
                ),
            });
        }
    }
    Ok(EinsumSpec { inputs, output })
}

/// Evaluate an einsum expression over the given operands.
pub fn einsum(spec: &str, operands: &[&Tensor]) -> Result<Tensor> {
    let parsed = parse_spec(spec)?;
    einsum_spec(&parsed, operands)
}

/// Evaluate a pre-parsed einsum specification.
pub fn einsum_spec(spec: &EinsumSpec, operands: &[&Tensor]) -> Result<Tensor> {
    if spec.inputs.len() != operands.len() {
        return Err(TensorError::InvalidAxes {
            context: format!(
                "einsum: spec has {} operands but {} tensors were provided",
                spec.inputs.len(),
                operands.len()
            ),
        });
    }
    // Check label/dimension consistency.
    let mut label_dims: HashMap<char, usize> = HashMap::new();
    for (labels, tensor) in spec.inputs.iter().zip(operands.iter()) {
        if labels.len() != tensor.ndim() {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "einsum: operand with labels {:?} has rank {}",
                    labels,
                    tensor.ndim()
                ),
            });
        }
        for (axis, &label) in labels.iter().enumerate() {
            let dim = tensor.dim(axis);
            if let Some(&prev) = label_dims.get(&label) {
                if prev != dim {
                    return Err(TensorError::ShapeMismatch {
                        context: format!(
                            "einsum: label '{label}' has inconsistent dimensions {prev} and {dim}"
                        ),
                    });
                }
            } else {
                label_dims.insert(label, dim);
            }
        }
    }

    // Work list of (tensor, labels). Input tensors are borrowed, not cloned —
    // only contraction intermediates are owned.
    let mut items: Vec<(Operand<'_>, Vec<char>)> = spec
        .inputs
        .iter()
        .zip(operands.iter())
        .map(|(labels, t)| (Operand::Borrowed(t), labels.clone()))
        .collect();

    // Greedy pairwise contraction: always contract the pair of tensors that
    // share a contractible label and produce the smallest intermediate.
    while items.len() > 1 {
        let mut best: Option<(usize, usize, usize)> = None; // (i, j, result size)
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let shared = shared_contractible(&items, i, j, &spec.output);
                if shared.is_empty() {
                    continue;
                }
                let size = result_size(&items[i], &items[j], &shared);
                if best.is_none_or(|(_, _, s)| size < s) {
                    best = Some((i, j, size));
                }
            }
        }
        let (i, j) = match best {
            Some((i, j, _)) => (i, j),
            // No shared labels anywhere: take an outer product of the first two.
            None => (0, 1),
        };
        let (right_t, right_l) = items.remove(j);
        let (left_t, left_l) = items.remove(i);
        let merged = contract_pair(
            left_t.as_tensor(),
            left_l,
            right_t.as_tensor(),
            right_l,
            &items,
            &spec.output,
        )?;
        items.push((Operand::Owned(merged.0), merged.1));
    }

    let (mut operand, mut labels) = items.pop().expect("einsum: empty operand list");

    // Sum out any label that does not appear in the output (can happen when a
    // label occurs only once in the inputs and is dropped from the output).
    let mut axis = 0;
    while axis < labels.len() {
        if spec.output.contains(&labels[axis]) {
            axis += 1;
        } else {
            operand = Operand::Owned(sum_axis(operand.as_tensor(), axis)?);
            labels.remove(axis);
        }
    }

    // Permute into the requested output order. An owned tensor in an
    // already-correct order is returned as-is (no final copy).
    let perm: Vec<usize> = spec
        .output
        .iter()
        .map(|c| {
            labels.iter().position(|l| l == c).ok_or_else(|| TensorError::InvalidAxes {
                context: format!("einsum: output label '{c}' lost during contraction"),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    match operand {
        Operand::Owned(t) if crate::shape::is_identity_perm(&perm) => Ok(t),
        other => other.as_tensor().permute(&perm),
    }
}

/// A pending einsum operand: caller-borrowed input or owned intermediate.
enum Operand<'a> {
    Borrowed(&'a Tensor),
    Owned(Tensor),
}

impl Operand<'_> {
    fn as_tensor(&self) -> &Tensor {
        match self {
            Operand::Borrowed(t) => t,
            Operand::Owned(t) => t,
        }
    }
}

/// Labels shared between items `i` and `j` that may be contracted now (they
/// appear in neither the output nor any other pending operand).
fn shared_contractible(
    items: &[(Operand<'_>, Vec<char>)],
    i: usize,
    j: usize,
    output: &[char],
) -> Vec<char> {
    let (_, li) = &items[i];
    let (_, lj) = &items[j];
    li.iter()
        .filter(|c| lj.contains(c))
        .filter(|c| !output.contains(c))
        .filter(|c| {
            items
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i && *k != j)
                .all(|(_, (_, lk))| !lk.contains(c))
        })
        .copied()
        .collect()
}

fn result_size(
    a: &(Operand<'_>, Vec<char>),
    b: &(Operand<'_>, Vec<char>),
    shared: &[char],
) -> usize {
    let mut size = 1usize;
    for (axis, label) in a.1.iter().enumerate() {
        if !shared.contains(label) {
            size = size.saturating_mul(a.0.as_tensor().dim(axis));
        }
    }
    for (axis, label) in b.1.iter().enumerate() {
        if !shared.contains(label) {
            size = size.saturating_mul(b.0.as_tensor().dim(axis));
        }
    }
    size
}

fn contract_pair(
    left_t: &Tensor,
    left_l: Vec<char>,
    right_t: &Tensor,
    right_l: Vec<char>,
    remaining: &[(Operand<'_>, Vec<char>)],
    output: &[char],
) -> Result<(Tensor, Vec<char>)> {
    // Contract every label shared by the two operands that is not needed by
    // the output or any remaining operand.
    let shared: Vec<char> = left_l
        .iter()
        .filter(|c| right_l.contains(c))
        .filter(|c| !output.contains(c))
        .filter(|c| remaining.iter().all(|(_, lk)| !lk.contains(c)))
        .copied()
        .collect();
    let axes_a: Vec<usize> =
        shared.iter().map(|c| left_l.iter().position(|l| l == c).unwrap()).collect();
    let axes_b: Vec<usize> =
        shared.iter().map(|c| right_l.iter().position(|l| l == c).unwrap()).collect();
    let result = tensordot(left_t, right_t, &axes_a, &axes_b)?;
    let mut labels: Vec<char> = left_l.iter().filter(|c| !shared.contains(c)).copied().collect();
    labels.extend(right_l.iter().filter(|c| !shared.contains(c)).copied());
    Ok((result, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::tensordot_naive;
    use koala_linalg::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_accepts_valid_specs() {
        let s = parse_spec("abc,cd->abd").unwrap();
        assert_eq!(s.inputs.len(), 2);
        assert_eq!(s.output, vec!['a', 'b', 'd']);
        assert!(parse_spec(" ab , bc -> ac ").is_ok());
    }

    #[test]
    fn parse_rejects_invalid_specs() {
        assert!(parse_spec("ab,bc").is_err(), "missing arrow");
        assert!(parse_spec("aab->ab").is_err(), "repeated label within operand");
        assert!(parse_spec("ab,bc->ad").is_err(), "output label not present");
        assert!(parse_spec("ab,ab,ab->").is_err(), "label appears three times");
        assert!(parse_spec("ab->aa").is_err(), "repeated output label");
        assert!(parse_spec("a1->a").is_err(), "non-alphabetic label");
    }

    #[test]
    fn matrix_multiplication() {
        let mut rng = StdRng::seed_from_u64(20);
        let a = Tensor::random(&[3, 4], &mut rng);
        let b = Tensor::random(&[4, 5], &mut rng);
        let c = einsum("ij,jk->ik", &[&a, &b]).unwrap();
        let expected = tensordot(&a, &b, &[1], &[0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn output_permutation_is_honoured() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::random(&[3, 4], &mut rng);
        let b = Tensor::random(&[4, 5], &mut rng);
        let c = einsum("ij,jk->ki", &[&a, &b]).unwrap();
        let expected = tensordot(&a, &b, &[1], &[0]).unwrap().permute(&[1, 0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn three_operand_chain() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Tensor::random(&[2, 3], &mut rng);
        let b = Tensor::random(&[3, 4], &mut rng);
        let c = Tensor::random(&[4, 2], &mut rng);
        let out = einsum("ij,jk,kl->il", &[&a, &b, &c]).unwrap();
        let ab = tensordot(&a, &b, &[1], &[0]).unwrap();
        let abc = tensordot(&ab, &c, &[1], &[0]).unwrap();
        assert!(out.approx_eq(&abc, 1e-11));
    }

    #[test]
    fn full_trace_network_to_scalar() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::random(&[3, 4], &mut rng);
        let b = Tensor::random(&[4, 3], &mut rng);
        let out = einsum("ij,ji->", &[&a, &b]).unwrap();
        assert_eq!(out.ndim(), 0);
        let prod = tensordot(&a, &b, &[1], &[0]).unwrap();
        let mut tr = c64(0.0, 0.0);
        for i in 0..3 {
            tr += prod.get(&[i, i]);
        }
        assert!(out.item().approx_eq(tr, 1e-11));
    }

    #[test]
    fn summed_free_index() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = Tensor::random(&[3, 5], &mut rng);
        let out = einsum("ij->i", &[&a]).unwrap();
        let expected = crate::contract::sum_axis(&a, 1).unwrap();
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn outer_product_of_disconnected_operands() {
        let mut rng = StdRng::seed_from_u64(25);
        let a = Tensor::random(&[2], &mut rng);
        let b = Tensor::random(&[3], &mut rng);
        let out = einsum("i,j->ij", &[&a, &b]).unwrap();
        assert!(out.approx_eq(&a.outer(&b), 1e-12));
    }

    #[test]
    fn tensor_network_star_contraction() {
        // A small star-shaped network exercising the greedy ordering:
        // center tensor contracted with three leaf tensors.
        let mut rng = StdRng::seed_from_u64(26);
        let center = Tensor::random(&[2, 3, 4], &mut rng);
        let la = Tensor::random(&[2, 5], &mut rng);
        let lb = Tensor::random(&[3, 6], &mut rng);
        let lc = Tensor::random(&[4, 7], &mut rng);
        let out = einsum("abc,ax,by,cz->xyz", &[&center, &la, &lb, &lc]).unwrap();
        assert_eq!(out.shape(), &[5, 6, 7]);
        // Cross-check against a naive sequence of contractions.
        let step1 = tensordot_naive(&center, &la, &[0], &[0]).unwrap(); // b c x
        let step2 = tensordot_naive(&step1, &lb, &[0], &[0]).unwrap(); // c x y
        let step3 = tensordot_naive(&step2, &lc, &[0], &[0]).unwrap(); // x y z
        assert!(out.approx_eq(&step3, 1e-10));
    }

    #[test]
    fn operand_count_and_shape_validation() {
        let a = Tensor::zeros(&[2, 2]);
        assert!(einsum("ij,jk->ik", &[&a]).is_err());
        assert!(einsum("ijk->ijk", &[&a]).is_err());
        let b = Tensor::zeros(&[3, 2]);
        assert!(einsum("ij,jk->ik", &[&a, &b]).is_err(), "label j has dims 2 and 3");
    }
}
