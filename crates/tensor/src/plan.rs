//! Memoised einsum contraction plans.
//!
//! PEPS evolution and expectation loops execute a small set of einsum
//! specifications thousands of times with identical operand shapes. The
//! greedy pairwise ordering search, the axis validation, and the
//! matricization-layout analysis of each pairwise step depend only on the
//! specification and the operand *shapes* — never on the operand values — so
//! all of it is computed once per `(spec, shapes)` key and replayed from a
//! process-wide cache. See [`crate::einsum`](mod@crate::einsum) for the full
//! design discussion
//! (cache key, eviction policy, and the safety argument for plan reuse).
//!
//! The public surface is:
//!
//! * [`Plan`] — an executable contraction schedule ([`Plan::build`] to plan
//!   without the cache, [`Plan::execute`] to run it on concrete operands),
//! * [`contraction_plan`] — the cached entry point used by
//!   [`crate::einsum::einsum_spec`],
//! * [`plan_stats`] / [`reset_plan_stats`] / [`clear_plan_cache`] — the
//!   accounting hooks used by `koala-bench` and the cache tests.

use crate::contract::PairPlan;
use crate::einsum::EinsumSpec;
use crate::shape::is_identity_perm;
use crate::tensor::{Result, Tensor, TensorError};
use koala_exec::{TaskGraph, TaskId, TaskKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock, Mutex};

/// Provenance of one step operand: a caller input or an earlier step's
/// output. Recorded at build time so execution can run the steps as a task
/// graph (dependencies = the `Step(_)` sources) instead of replaying the
/// working-list simulation serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// The `i`-th caller-provided operand.
    Input(usize),
    /// The output of step `j`.
    Step(usize),
}

/// One pairwise contraction of the schedule: contract working-list slots
/// `lhs` and `rhs` (with `lhs < rhs`) using the pre-analysed `pair` lowering
/// and push the result at the back of the working list. `lhs_src` / `rhs_src`
/// name the same two operands by provenance rather than by list position.
#[derive(Debug, Clone)]
struct Step {
    lhs: usize,
    rhs: usize,
    lhs_src: Src,
    rhs_src: Src,
    pair: PairPlan,
}

/// A fully planned einsum contraction for one `(spec, operand shapes)` key.
///
/// A plan owns everything the per-call path previously recomputed: the greedy
/// pairwise contraction order, the validated axis lists and matricization
/// layouts of every step, the trailing axis sums for labels dropped from the
/// output, and the final output permutation. [`Plan::execute`] replays that
/// schedule on operands whose shapes must match the plan exactly.
#[derive(Debug, Clone)]
pub struct Plan {
    spec: EinsumSpec,
    shapes: Vec<Vec<usize>>,
    steps: Vec<Step>,
    /// Axes to sum out after the last contraction, in execution order (each
    /// relative to the tensor shape at that point).
    sum_axes: Vec<usize>,
    /// Final permutation into the requested output order (`None` = identity).
    output_perm: Option<Vec<usize>>,
}

impl Plan {
    /// Run the full planning pipeline for `spec` applied to operands of the
    /// given shapes: validation, greedy ordering, and per-step matricization
    /// analysis. This is the uncached path — [`contraction_plan`] memoises it.
    pub fn build(spec: &EinsumSpec, shapes: &[&[usize]]) -> Result<Plan> {
        if spec.inputs.len() != shapes.len() {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "einsum: spec has {} operands but {} tensors were provided",
                    spec.inputs.len(),
                    shapes.len()
                ),
            });
        }
        // Check label/dimension consistency.
        let mut label_dims: HashMap<char, usize> = HashMap::new();
        for (labels, shape) in spec.inputs.iter().zip(shapes.iter()) {
            if labels.len() != shape.len() {
                return Err(TensorError::ShapeMismatch {
                    context: format!(
                        "einsum: operand with labels {:?} has rank {}",
                        labels,
                        shape.len()
                    ),
                });
            }
            for (&label, &dim) in labels.iter().zip(shape.iter()) {
                if let Some(&prev) = label_dims.get(&label) {
                    if prev != dim {
                        return Err(TensorError::ShapeMismatch {
                            context: format!(
                                "einsum: label '{label}' has inconsistent dimensions {prev} and {dim}"
                            ),
                        });
                    }
                } else {
                    label_dims.insert(label, dim);
                }
            }
        }

        // Shape-level simulation of the contraction. Working list of
        // (labels, shape) mirrors the execute-time working list of tensors.
        let mut items: Vec<(Vec<char>, Vec<usize>)> = spec
            .inputs
            .iter()
            .zip(shapes.iter())
            .map(|(labels, shape)| (labels.clone(), shape.to_vec()))
            .collect();
        // Provenance of each working-list slot, kept in lockstep with
        // `items` so every step records *which* values it consumes.
        let mut srcs: Vec<Src> = (0..items.len()).map(Src::Input).collect();
        let mut steps: Vec<Step> = Vec::new();

        // Greedy pairwise ordering: always contract the pair of tensors that
        // share a contractible label and produce the smallest intermediate.
        while items.len() > 1 {
            let mut best: Option<(usize, usize, usize)> = None; // (i, j, result size)
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let shared = shared_contractible(&items, i, j, &spec.output);
                    if shared.is_empty() {
                        continue;
                    }
                    let size = result_size(&items[i], &items[j], &shared);
                    if best.is_none_or(|(_, _, s)| size < s) {
                        best = Some((i, j, size));
                    }
                }
            }
            let (i, j) = match best {
                Some((i, j, _)) => (i, j),
                // No shared labels anywhere: take an outer product of the
                // first two operands.
                None => (0, 1),
            };
            let (right_l, right_s) = items.remove(j);
            let (left_l, left_s) = items.remove(i);
            // Contract every label shared by the two operands that is not
            // needed by the output or any remaining operand.
            let shared: Vec<char> = left_l
                .iter()
                .filter(|c| right_l.contains(c))
                .filter(|c| !spec.output.contains(c))
                .filter(|c| items.iter().all(|(lk, _)| !lk.contains(c)))
                .copied()
                .collect();
            let axes_a: Vec<usize> =
                shared.iter().filter_map(|c| left_l.iter().position(|l| l == c)).collect();
            let axes_b: Vec<usize> =
                shared.iter().filter_map(|c| right_l.iter().position(|l| l == c)).collect();
            let pair = PairPlan::new(&left_s, &axes_a, &right_s, &axes_b)?;
            let mut labels: Vec<char> =
                left_l.iter().filter(|c| !shared.contains(c)).copied().collect();
            labels.extend(right_l.iter().filter(|c| !shared.contains(c)).copied());
            let out_shape = pair.out_shape().to_vec();
            let rhs_src = srcs.remove(j);
            let lhs_src = srcs.remove(i);
            srcs.push(Src::Step(steps.len()));
            steps.push(Step { lhs: i, rhs: j, lhs_src, rhs_src, pair });
            items.push((labels, out_shape));
        }

        let Some((mut labels, _shape)) = items.pop() else {
            return Err(TensorError::InvalidAxes { context: "einsum: empty operand list".into() });
        };

        // Sum out any label that does not appear in the output (a label that
        // occurs only once in the inputs and is dropped from the output).
        let mut sum_axes = Vec::new();
        let mut axis = 0;
        while axis < labels.len() {
            if spec.output.contains(&labels[axis]) {
                axis += 1;
            } else {
                sum_axes.push(axis);
                labels.remove(axis);
            }
        }

        // Permute into the requested output order.
        let perm: Vec<usize> = spec
            .output
            .iter()
            .map(|c| {
                labels.iter().position(|l| l == c).ok_or_else(|| TensorError::InvalidAxes {
                    context: format!("einsum: output label '{c}' lost during contraction"),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let output_perm = if is_identity_perm(&perm) { None } else { Some(perm) };

        Ok(Plan {
            spec: spec.clone(),
            shapes: shapes.iter().map(|s| s.to_vec()).collect(),
            steps,
            sum_axes,
            output_perm,
        })
    }

    /// The specification this plan was built for.
    pub fn spec(&self) -> &EinsumSpec {
        &self.spec
    }

    /// The operand shapes this plan was built for.
    pub fn shapes(&self) -> &[Vec<usize>] {
        &self.shapes
    }

    /// Number of pairwise contraction (GEMM) steps in the schedule.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Execute the planned contraction on concrete operands.
    ///
    /// The operands must have exactly the shapes the plan was built for
    /// (checked); their values are unconstrained — the schedule depends only
    /// on spec and shapes. Realness is *not* part of the plan key: every
    /// pairwise step re-reads the operands' [`Tensor::is_real`] hints at
    /// execution time and dispatches to the real-only GEMM when both sides
    /// carry them, so one cached plan serves real and complex operand sets
    /// alike (and an all-real einsum yields a hint-carrying real result).
    pub fn execute(&self, operands: &[&Tensor]) -> Result<Tensor> {
        if operands.len() != self.shapes.len() {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "einsum plan: built for {} operands but {} were provided",
                    self.shapes.len(),
                    operands.len()
                ),
            });
        }
        for (tensor, shape) in operands.iter().zip(self.shapes.iter()) {
            if tensor.shape() != shape.as_slice() {
                return Err(TensorError::ShapeMismatch {
                    context: format!(
                        "einsum plan: built for operand shape {:?}, got {:?}",
                        shape,
                        tensor.shape()
                    ),
                });
            }
        }

        // Multi-step schedules on a multi-threaded executor run as a task
        // graph so independent steps contract concurrently; otherwise (or
        // for single-step plans, where there is nothing to overlap) replay
        // the working list serially. Both paths run the same `PairPlan`
        // lowerings on the same values, so results, realness hints, and MAC
        // billing are identical.
        let operand = if self.steps.len() >= 2 && koala_exec::threads() > 1 {
            self.execute_steps_dag(operands)?
        } else {
            self.execute_steps_serial(operands)?
        };
        let mut operand = operand;

        for &axis in &self.sum_axes {
            operand = Operand::Owned(crate::contract::sum_axis(operand.as_tensor(), axis)?);
        }

        // An owned tensor in an already-correct order is returned as-is.
        match (&self.output_perm, operand) {
            (None, Operand::Owned(t)) => Ok(t),
            (None, Operand::Borrowed(t)) => Ok(t.clone()),
            (Some(perm), operand) => operand.as_tensor().permute(perm),
        }
    }

    /// Replay the pairwise steps on the calling thread, in schedule order.
    fn execute_steps_serial<'a>(&self, operands: &[&'a Tensor]) -> Result<Operand<'a>> {
        // Working list of tensors: caller-borrowed inputs, owned intermediates.
        let mut items: Vec<Operand<'_>> = operands.iter().map(|t| Operand::Borrowed(t)).collect();
        for step in &self.steps {
            let right = items.remove(step.rhs);
            let left = items.remove(step.lhs);
            items.push(Operand::Owned(step.pair.execute(left.as_tensor(), right.as_tensor())?));
        }
        items.pop().ok_or_else(|| TensorError::InvalidAxes {
            context: "einsum plan: empty operand list".into(),
        })
    }

    /// Lower the pairwise steps onto the `koala-exec` task graph: one `Step`
    /// task per contraction, depending on the earlier steps whose outputs it
    /// consumes. Independent branches of the contraction tree run
    /// concurrently; each value is produced by one task and consumed by at
    /// most one other, so slots hand tensors over without cloning.
    fn execute_steps_dag<'a>(&self, operands: &[&'a Tensor]) -> Result<Operand<'a>> {
        let n_steps = self.steps.len();
        let results: Vec<Mutex<Option<Tensor>>> = (0..n_steps).map(|_| Mutex::new(None)).collect();
        // The first TensorError a step hits, carried across the KoalaError
        // boundary of the executor (which only cancels the run).
        let failure: Mutex<Option<TensorError>> = Mutex::new(None);

        let mut graph = TaskGraph::new();
        let mut tids: Vec<TaskId> = Vec::with_capacity(n_steps);
        for (si, step) in self.steps.iter().enumerate() {
            let mut deps = Vec::new();
            for src in [step.lhs_src, step.rhs_src] {
                if let Src::Step(j) = src {
                    deps.push(tids[j]);
                }
            }
            let results = &results;
            let failure = &failure;
            tids.push(graph.add(TaskKind::Step, &deps, move || {
                let fetch =
                    |src: Src| -> std::result::Result<Operand<'a>, koala_error::KoalaError> {
                        match src {
                            Src::Input(i) => Ok(Operand::Borrowed(operands[i])),
                            // The dependency edge ordered the producer before
                            // us, and each step output has exactly one
                            // consumer, so the take() always yields the value.
                            Src::Step(j) => crate::lock_ignore_poison(&results[j])
                                .take()
                                .map(Operand::Owned)
                                .ok_or_else(|| {
                                    koala_error::KoalaError::new(
                                        koala_error::ErrorKind::InvalidArgument,
                                        format!("einsum step {si}: missing output of step {j}"),
                                    )
                                }),
                        }
                    };
                let left = fetch(step.lhs_src)?;
                let right = fetch(step.rhs_src)?;
                match step.pair.execute(left.as_tensor(), right.as_tensor()) {
                    Ok(t) => {
                        *crate::lock_ignore_poison(&results[si]) = Some(t);
                        Ok(())
                    }
                    Err(e) => {
                        let mut slot = crate::lock_ignore_poison(failure);
                        let koala: koala_error::KoalaError = e.clone().into();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        Err(koala)
                    }
                }
            }));
        }
        match graph.run() {
            Ok(()) => {}
            Err(exec_err) => {
                if let Some(e) = crate::lock_ignore_poison(&failure).take() {
                    return Err(e);
                }
                // No step recorded a TensorError: a task panicked (a bug the
                // serial path would also have panicked on).
                return Err(TensorError::Linalg(format!("einsum task graph failed: {exec_err}")));
            }
        }
        let last = crate::lock_ignore_poison(&results[n_steps - 1]).take().ok_or_else(|| {
            TensorError::InvalidAxes { context: "einsum plan: final step produced no value".into() }
        })?;
        Ok(Operand::Owned(last))
    }
}

/// A pending einsum operand: caller-borrowed input or owned intermediate.
enum Operand<'a> {
    Borrowed(&'a Tensor),
    Owned(Tensor),
}

impl Operand<'_> {
    fn as_tensor(&self) -> &Tensor {
        match self {
            Operand::Borrowed(t) => t,
            Operand::Owned(t) => t,
        }
    }
}

/// Labels shared between items `i` and `j` that may be contracted now (they
/// appear in neither the output nor any other pending operand).
fn shared_contractible(
    items: &[(Vec<char>, Vec<usize>)],
    i: usize,
    j: usize,
    output: &[char],
) -> Vec<char> {
    let (li, _) = &items[i];
    let (lj, _) = &items[j];
    li.iter()
        .filter(|c| lj.contains(c))
        .filter(|c| !output.contains(c))
        .filter(|c| {
            items
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i && *k != j)
                .all(|(_, (lk, _))| !lk.contains(c))
        })
        .copied()
        .collect()
}

/// Size of the intermediate produced by contracting `a` and `b` over `shared`.
fn result_size(a: &(Vec<char>, Vec<usize>), b: &(Vec<char>, Vec<usize>), shared: &[char]) -> usize {
    let mut size = 1usize;
    for (label, &dim) in a.0.iter().zip(a.1.iter()) {
        if !shared.contains(label) {
            size = size.saturating_mul(dim);
        }
    }
    for (label, &dim) in b.0.iter().zip(b.1.iter()) {
        if !shared.contains(label) {
            size = size.saturating_mul(dim);
        }
    }
    size
}

// ---------------------------------------------------------------------------
// Process-wide plan cache.
// ---------------------------------------------------------------------------

/// One resident plan. The key material (spec labels + shapes) lives inside
/// the `Arc<Plan>` itself, so entries carry no duplicated owned key — lookups
/// compare the borrowed query against `plan.spec()` / `plan.shapes()`.
struct Entry {
    plan: Arc<Plan>,
    stamp: u64,
}

impl Entry {
    fn matches(&self, spec: &EinsumSpec, shapes: &[&[usize]]) -> bool {
        let plan = &*self.plan;
        plan.spec == *spec
            && plan.shapes.len() == shapes.len()
            && plan.shapes.iter().zip(shapes.iter()).all(|(a, b)| a.as_slice() == *b)
    }
}

/// Hash of a `(spec, shapes)` query computed over the *borrowed* data — no
/// owned key is ever built for a lookup (the hot path allocates nothing).
fn key_hash(spec: &EinsumSpec, shapes: &[&[usize]]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    spec.inputs.hash(&mut h);
    spec.output.hash(&mut h);
    for s in shapes {
        s.hash(&mut h);
    }
    h.finish()
}

/// Default number of cached plans. A PEPS evolution + expectation workload
/// uses a few dozen distinct `(spec, shapes)` keys; 512 leaves generous room
/// for several concurrent workloads before eviction starts.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 512;

/// Number of lock stripes the cache is sharded over. Concurrent lookups of
/// *different* keys proceed on different mutexes (the single global mutex
/// was flagged under contention once einsum execution went multi-threaded);
/// 16 stripes give a 16x expected contention reduction at negligible memory
/// cost.
const PLAN_CACHE_STRIPES: usize = 16;

/// One lock stripe: a slice of the hash space with its own bucket map.
/// LRU bookkeeping stays *global* — stamps come from the shared [`CLOCK`],
/// the population from [`RESIDENT`], and eviction removes the globally
/// oldest entry across all stripes — so sharding changes observable
/// hit/miss/eviction behaviour not at all (pinned by `tests/plan_cache.rs`).
#[derive(Default)]
struct Stripe {
    /// Buckets by precomputed key hash; collisions resolved by comparing
    /// against the spec/shapes stored in each resident plan.
    map: HashMap<u64, Vec<Entry>>,
}

impl Stripe {
    /// `(hash, stamp)` of this stripe's oldest entry.
    fn oldest(&self) -> Option<(u64, u64)> {
        self.map
            .iter()
            .flat_map(|(&h, bucket)| bucket.iter().map(move |e| (h, e.stamp)))
            .min_by_key(|&(_, stamp)| stamp)
    }

    /// Remove the entry with exactly this `(hash, stamp)`; false if a
    /// concurrent touch re-stamped it in the meantime.
    fn remove_stamp(&mut self, hash: u64, stamp: u64) -> bool {
        let Some(bucket) = self.map.get_mut(&hash) else { return false };
        let before = bucket.len();
        bucket.retain(|e| e.stamp != stamp);
        let removed = bucket.len() < before;
        if bucket.is_empty() {
            self.map.remove(&hash);
        }
        removed
    }
}

static STRIPES: LazyLock<Vec<Mutex<Stripe>>> =
    LazyLock::new(|| (0..PLAN_CACHE_STRIPES).map(|_| Mutex::new(Stripe::default())).collect());

/// Global LRU clock; every touch/insert takes the next tick.
static CLOCK: AtomicU64 = AtomicU64::new(0);
/// Plans resident across all stripes.
static RESIDENT: AtomicUsize = AtomicUsize::new(0);
/// Maximum resident plans across all stripes (global, not per stripe).
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_PLAN_CACHE_CAPACITY);

fn stripe_of(hash: u64) -> &'static Mutex<Stripe> {
    &STRIPES[(hash as usize) % PLAN_CACHE_STRIPES]
}

/// Look `hash` up in its stripe, bumping the entry's stamp on a hit.
fn cache_touch(hash: u64, spec: &EinsumSpec, shapes: &[&[usize]]) -> Option<Arc<Plan>> {
    let stamp = CLOCK.fetch_add(1, Ordering::Relaxed) + 1;
    let mut stripe = crate::lock_ignore_poison(stripe_of(hash));
    stripe.map.get_mut(&hash)?.iter_mut().find(|e| e.matches(spec, shapes)).map(|e| {
        e.stamp = stamp;
        Arc::clone(&e.plan)
    })
}

/// Insert a freshly built plan, evicting globally-oldest entries first if
/// the cache is at capacity. Two threads racing to plan the same key both
/// insert; the dedup check keeps one.
fn cache_insert(hash: u64, plan: Arc<Plan>) {
    let stamp = CLOCK.fetch_add(1, Ordering::Relaxed) + 1;
    // Never hold a stripe lock while evicting (eviction scans every
    // stripe); dedup-or-make-room first, then insert.
    {
        let mut stripe = crate::lock_ignore_poison(stripe_of(hash));
        if let Some(bucket) = stripe.map.get_mut(&hash) {
            if let Some(existing) =
                bucket.iter_mut().find(|e| e.plan.spec == plan.spec && e.plan.shapes == plan.shapes)
            {
                existing.plan = plan;
                existing.stamp = stamp;
                return;
            }
        }
    }
    let mut failed_attempts = 0;
    while RESIDENT.load(Ordering::Acquire) >= CAPACITY.load(Ordering::Acquire) {
        if !evict_global_oldest() {
            // Empty cache (capacity reached by concurrent inserts) or the
            // chosen victim was re-stamped by a racing touch; give up after
            // a few tries rather than spin — a transient overshoot of the
            // capacity is corrected by the next insert.
            failed_attempts += 1;
            if failed_attempts >= 4 {
                break;
            }
        }
    }
    let mut stripe = crate::lock_ignore_poison(stripe_of(hash));
    if let Some(bucket) = stripe.map.get_mut(&hash) {
        if let Some(existing) =
            bucket.iter_mut().find(|e| e.plan.spec == plan.spec && e.plan.shapes == plan.shapes)
        {
            existing.plan = plan;
            existing.stamp = stamp;
            return;
        }
    }
    stripe.map.entry(hash).or_default().push(Entry { plan, stamp });
    RESIDENT.fetch_add(1, Ordering::AcqRel);
}

/// Remove the least-recently-used entry *across all stripes*: scan each
/// stripe (one lock at a time — never two held together, so no lock-order
/// deadlock) for its oldest stamp, then remove the global minimum. A
/// concurrent touch can re-stamp the chosen entry between the scan and the
/// removal; the caller simply retries. Linear scan: the capacity is small
/// and eviction is rare in steady state. Returns whether an entry was
/// evicted.
fn evict_global_oldest() -> bool {
    let mut oldest: Option<(usize, u64, u64)> = None; // (stripe, hash, stamp)
    for (si, stripe) in STRIPES.iter().enumerate() {
        if let Some((h, stamp)) = crate::lock_ignore_poison(stripe).oldest() {
            if oldest.is_none_or(|(_, _, s)| stamp < s) {
                oldest = Some((si, h, stamp));
            }
        }
    }
    let Some((si, hash, stamp)) = oldest else { return false };
    if crate::lock_ignore_poison(&STRIPES[si]).remove_stamp(hash, stamp) {
        RESIDENT.fetch_sub(1, Ordering::AcqRel);
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the plan-cache accounting counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran a fresh greedy planning pass.
    pub misses: u64,
    /// Plans discarded to make room (least-recently-used first).
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Maximum number of resident plans.
    pub capacity: usize,
}

/// Return the memoised contraction plan for `spec` applied to operands of the
/// given shapes, planning (and caching) it on first use.
///
/// This is the entry point behind [`crate::einsum::einsum_spec`]; it is public
/// so callers with a long-lived hot loop can hold the `Arc<Plan>` directly and
/// skip even the cache lookup.
pub fn contraction_plan(spec: &EinsumSpec, shapes: &[&[usize]]) -> Result<Arc<Plan>> {
    let hash = key_hash(spec, shapes);
    if let Some(plan) = cache_touch(hash, spec, shapes) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(plan);
    }
    // Plan outside the lock: planning is the expensive part, and two threads
    // racing to plan the same key merely insert the same value twice (insert
    // deduplicates, keeping the newer plan).
    MISSES.fetch_add(1, Ordering::Relaxed);
    let plan = Arc::new(Plan::build(spec, shapes)?);
    cache_insert(hash, Arc::clone(&plan));
    Ok(plan)
}

/// A call-site pinned plan holder: the "hold the `Arc<Plan>` directly" tier
/// above the global LRU cache.
///
/// The global cache already reduces a hot einsum to one hash + mutex round
/// trip per call; a `PlanCell` removes even that. Declare one `static` cell
/// per call site with the site's (fixed) spec string; [`PlanCell::plan`]
/// serves repeat shapes from a small per-site MRU list without touching the
/// global cache or its [`plan_stats`] counters — which is also what lets a
/// test *pin* the behaviour: a warmed loop over `PlanCell` call sites must
/// leave `plan_stats()` unchanged.
///
/// On a shape miss the cell parses the spec and plans through
/// [`contraction_plan`] (so the plan is still shared with any other caller
/// of the same key), then memoises the `Arc` locally. The list holds
/// [`PlanCell::CAPACITY`] plans — enough for the handful of shape variants a
/// sweep step cycles through (e.g. boundary bonds growing along a zip-up).
///
/// ```
/// use koala_tensor::{PlanCell, Tensor};
///
/// static SITE_PLAN: PlanCell = PlanCell::new("ij,jk->ik");
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[3, 4]);
/// let first = SITE_PLAN.execute(&[&a, &b]).unwrap(); // plans once
/// let again = SITE_PLAN.execute(&[&a, &b]).unwrap(); // held Arc, no lookup
/// assert_eq!(first.shape(), again.shape());
/// ```
pub struct PlanCell {
    spec: &'static str,
    /// Most-recently-used first.
    held: Mutex<Vec<Arc<Plan>>>,
}

impl PlanCell {
    /// Maximum number of shape variants held per call site.
    pub const CAPACITY: usize = 8;

    /// A cell for one einsum call site with a fixed spec string.
    pub const fn new(spec: &'static str) -> Self {
        PlanCell { spec, held: Mutex::new(Vec::new()) }
    }

    /// The plan for `shapes`, from the cell when held (no global-cache
    /// traffic), planning and memoising it otherwise.
    pub fn plan(&self, shapes: &[&[usize]]) -> Result<Arc<Plan>> {
        let mut held = crate::lock_ignore_poison(&self.held);
        if let Some(pos) = held.iter().position(|plan| {
            plan.shapes.len() == shapes.len()
                && plan.shapes.iter().zip(shapes.iter()).all(|(a, b)| a.as_slice() == *b)
        }) {
            let plan = Arc::clone(&held[pos]);
            if pos != 0 {
                held[..=pos].rotate_right(1);
            }
            return Ok(plan);
        }
        let spec = crate::einsum::parse_spec(self.spec)?;
        let plan = contraction_plan(&spec, shapes)?;
        held.insert(0, Arc::clone(&plan));
        held.truncate(Self::CAPACITY);
        Ok(plan)
    }

    /// Plan (or recall) and execute in one call.
    pub fn execute(&self, operands: &[&Tensor]) -> Result<Tensor> {
        let shapes: Vec<&[usize]> = operands.iter().map(|t| t.shape()).collect();
        self.plan(&shapes)?.execute(operands)
    }
}

/// Read the plan-cache hit/miss/eviction counters.
pub fn plan_stats() -> PlanStats {
    PlanStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        entries: RESIDENT.load(Ordering::Acquire),
        capacity: CAPACITY.load(Ordering::Acquire),
    }
}

/// Zero the hit/miss/eviction counters (resident plans are kept).
pub fn reset_plan_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
}

/// Drop every cached plan and every memoised spec parse (counters are kept).
/// Used by benchmarks that measure cold planning overhead — after this call
/// the next `einsum` pays parsing, validation, and the greedy search again.
pub fn clear_plan_cache() {
    let mut dropped = 0usize;
    for stripe in STRIPES.iter() {
        let mut stripe = crate::lock_ignore_poison(stripe);
        dropped += stripe.map.values().map(Vec::len).sum::<usize>();
        stripe.map.clear();
    }
    RESIDENT.fetch_sub(dropped, Ordering::AcqRel);
    crate::einsum::clear_parse_cache();
}

/// Change the cache capacity, evicting least-recently-used plans if the new
/// capacity is smaller than the current population.
pub fn set_plan_cache_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    CAPACITY.store(capacity, Ordering::Release);
    while RESIDENT.load(Ordering::Acquire) > capacity {
        if !evict_global_oldest() {
            break;
        }
    }
}
