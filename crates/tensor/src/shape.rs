//! Shape and index arithmetic for dense row-major tensors.

/// Row-major strides for a shape (last axis fastest).
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0usize; shape.len()];
    let mut acc = 1usize;
    for (stride, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *stride = acc;
        acc *= dim;
    }
    strides
}

/// Total number of elements of a shape.
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Convert a multi-index to a flat row-major offset.
#[inline]
pub fn ravel(index: &[usize], strides: &[usize]) -> usize {
    debug_assert_eq!(index.len(), strides.len());
    index.iter().zip(strides.iter()).map(|(i, s)| i * s).sum()
}

/// Convert a flat row-major offset back to a multi-index.
pub fn unravel(mut offset: usize, shape: &[usize]) -> Vec<usize> {
    let mut index = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        let dim = shape[i];
        index[i] = offset % dim;
        offset /= dim;
    }
    index
}

/// In-place increment of a multi-index in row-major (odometer) order.
/// Returns `false` when the index wraps past the end.
pub fn increment_index(index: &mut [usize], shape: &[usize]) -> bool {
    for i in (0..shape.len()).rev() {
        index[i] += 1;
        if index[i] < shape[i] {
            return true;
        }
        index[i] = 0;
    }
    false
}

/// True if `perm` maps every axis to itself.
pub fn is_identity_perm(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i == p)
}

/// Check that a permutation is valid (each axis appears exactly once).
pub fn is_permutation(perm: &[usize]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Apply a permutation to a shape: `out[i] = shape[perm[i]]`.
pub fn permute_shape(shape: &[usize], perm: &[usize]) -> Vec<usize> {
    perm.iter().map(|&p| shape[p]).collect()
}

/// Inverse of a permutation.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [2, 3, 4];
        let strides = strides_for(&shape);
        for offset in 0..num_elements(&shape) {
            let idx = unravel(offset, &shape);
            assert_eq!(ravel(&idx, &strides), offset);
        }
    }

    #[test]
    fn odometer_visits_every_index_in_order() {
        let shape = [2, 3];
        let mut idx = vec![0, 0];
        let mut visited = vec![idx.clone()];
        while increment_index(&mut idx, &shape) {
            visited.push(idx.clone());
        }
        assert_eq!(visited.len(), 6);
        assert_eq!(visited[0], vec![0, 0]);
        assert_eq!(visited[1], vec![0, 1]);
        assert_eq!(visited[5], vec![1, 2]);
    }

    #[test]
    fn permutation_helpers() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3]));
        assert_eq!(permute_shape(&[10, 20, 30], &[2, 0, 1]), vec![30, 10, 20]);
        assert_eq!(invert_permutation(&[2, 0, 1]), vec![1, 2, 0]);
    }
}
