//! Offline stand-in for the subset of the `criterion` crate used by
//! `koala-bench`.
//!
//! The build environment has no network access to crates.io, so this shim
//! keeps the `benches/kernels.rs` source unchanged while providing simple
//! wall-clock measurement: each `bench_function` runs one untimed warm-up
//! iteration followed by `sample_size` timed iterations, and prints the
//! mean / min / max per-iteration time. No statistical analysis, HTML
//! reports, or outlier rejection — just honest timings.

// Shims are test/bench infrastructure, exempt from the workspace no-panic
// gate that CI enforces on the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver (shim: only groups and prints).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { group: name.to_string(), sample_size: 100 }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
            self.group, mean, min, max, n
        );
        self
    }

    /// End the group (printing already happened incrementally).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; times the routine under test.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once untimed (warm-up), then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into one callable group, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        let mut calls = 0usize;
        group.sample_size(5).bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 5 timed iterations.
        assert_eq!(calls, 6);
    }
}
