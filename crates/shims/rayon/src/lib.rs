//! Offline stand-in for the subset of the `rayon` crate used by koala-rs.
//!
//! The build environment has no network access to crates.io, so this local
//! shim re-implements the pieces the workspace relies on with
//! `std::thread::scope`: `par_chunks_mut`, `into_par_iter` over ranges and
//! vectors, `enumerate`/`for_each`, plus [`join`] and [`current_num_threads`].
//!
//! Work distribution is a shared atomic cursor over an eagerly collected item
//! list — items are claimed one at a time, so uneven task costs (e.g. edge
//! tiles of a GEMM) balance across threads. The thread count honours
//! `RAYON_NUM_THREADS` just like real rayon, which the benchmark harness uses
//! to measure single- vs multi-threaded kernels.

// Shims are test/bench infrastructure, exempt from the workspace no-panic
// gate that CI enforces on the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]
/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSliceMut};
}

/// Number of worker threads parallel operations will use.
///
/// Reads `RAYON_NUM_THREADS` (0 or unset means "all available cores").
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: joined task panicked"))
    })
}

/// Eager parallel iterator over an owned list of items.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Mutable chunked views of a slice, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (last one may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

/// Consuming operations on a [`ParIter`], mirroring `rayon::iter::ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consume the iterator, yielding every item exactly once.
    fn drain(self) -> Vec<Self::Item>;

    /// Pair every item with its original index.
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter { items: self.drain().into_iter().enumerate().collect() }
    }

    /// Apply `f` to every item, distributing items over worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let items = self.drain();
        let threads = current_num_threads().min(items.len());
        if threads <= 1 {
            items.into_iter().for_each(f);
            return;
        }
        // Workers claim items one at a time from a shared queue so uneven
        // per-item cost (e.g. GEMM edge tiles) balances across threads.
        let queue = std::sync::Mutex::new(items.into_iter());
        let f = &f;
        let queue = &queue;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || loop {
                    let item = queue.lock().expect("rayon shim: poisoned queue").next();
                    match item {
                        Some(it) => f(it),
                        None => break,
                    }
                });
            }
        });
    }
}

impl<I: Send> ParallelIterator for ParIter<I> {
    type Item = I;
    fn drain(self) -> Vec<I> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(blk, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (blk * 64 + i) as u64;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn range_for_each_runs_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        (0..hits.len()).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
