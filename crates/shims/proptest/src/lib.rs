//! Offline stand-in for the subset of the `proptest` crate used by the
//! koala-rs test suites.
//!
//! The build environment has no network access to crates.io. The workspace's
//! property tests only use integer-range strategies, tuple strategies,
//! `prop::collection::vec`, `proptest!` with `pattern in strategy` arguments,
//! and `prop_assert!` — so this shim implements exactly that. Instead of
//! randomised shrinking, each test runs `cases` deterministic samples drawn
//! from a seeded RNG, which keeps failures reproducible across runs.

// Shims are test/bench infrastructure, exempt from the workspace no-panic
// gate that CI enforces on the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of deterministic samples to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of sampled values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Built-in strategy constructors, mirroring the `proptest::prop` module path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Lengths accepted by [`fn@vec`]: `a..b` or `a..=b`.
        pub trait SizeRange {
            /// Sample a length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.start..self.end)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(*self.start()..*self.end() + 1)
            }
        }

        /// Strategy producing `Vec`s of values from `element`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Run a closure over `cases` deterministic samples (used by [`proptest!`]).
pub fn run_cases(config: &ProptestConfig, mut case: impl FnMut(&mut StdRng)) {
    for i in 0..config.cases {
        // Distinct, reproducible stream per case.
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ u64::from(i));
        case(&mut rng);
    }
}

/// Shim for `proptest!`: runs each test body over deterministic samples of
/// its `pattern in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, |rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
}

/// Shim for `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `prop_assume!`: skip the rest of the current case when the
/// assumption fails (the test body runs inside a per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Shim for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn dims() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn samples_respect_ranges((m, k) in dims(), n in 1usize..10, seed in 0u64..1000) {
            prop_assert!((1..10).contains(&m));
            prop_assert!((1..10).contains(&k));
            prop_assert!((1..10).contains(&n));
            prop_assert!(seed < 1000);
        }

        #[test]
        fn vec_strategy_lengths(shape in prop::collection::vec(1usize..4, 1..=5)) {
            prop_assert!((1..=5).contains(&shape.len()));
            prop_assert!(shape.iter().all(|&d| (1..4).contains(&d)));
        }
    }
}
