//! Offline stand-in for the subset of the `rand` crate used by koala-rs.
//!
//! The build environment has no network access to crates.io, so this local
//! shim provides exactly the API surface the workspace uses: the [`Rng`]
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] backed by xoshiro256++ seeded through
//! SplitMix64. It is *not* a cryptographic or statistically audited RNG; it
//! only needs to produce reproducible, well-mixed streams for tests and
//! random tensor initialisation.

// Shims are test/bench infrastructure, exempt from the workspace no-panic
// gate that CI enforces on the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::ops::Range;

/// Random number source: everything is derived from `next_u64`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a type with a canonical "standard" distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a single seed word.
pub trait SeedableRng: Sized {
    /// Deterministically construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[low, high)`. Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        low + (high - low) * f64::sample(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < span / 2^64, negligible for the small spans
                // used in tests and random initialisation.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (same role as `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors to avoid correlated low-entropy states.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(0..17usize);
            assert!(n < 17);
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unsized_and_reborrowed_receivers() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let r = &mut rng;
        let _ = takes_unsized(r);
        let _: u64 = r.gen();
    }
}
