//! # koala-json
//!
//! Tiny JSON value model, pretty-printer, and parser shared by the koala-rs
//! workspace.
//!
//! The build environment cannot fetch `serde`/`serde_json`; this hand-rolled
//! pair covers the workspace's needs: the emitter writes escaped strings,
//! finite numbers (non-finite values serialise as `null`, matching
//! serde_json), arrays, and insertion-ordered objects; the parser
//! ([`JsonValue::parse`]) reads the same dialect back. Two consumers exist:
//!
//! * `koala-bench` emits every figure/benchmark file through it and
//!   `check_bench` parses the committed `BENCH_gemm.json` baselines,
//! * `koala-cluster` parses the same committed benchmark file to calibrate
//!   its distributed cost model (`CostModel::from_bench`).
//!
//! It lives in its own crate (rather than inside `koala-bench`) precisely so
//! the cluster crate can read the calibration file without depending on the
//! benchmark harness that *writes* it.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Finite double-precision number.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Number helper (accepts anything convertible to `f64`).
    pub fn num(x: impl Into<f64>) -> JsonValue {
        JsonValue::Num(x.into())
    }

    /// String helper.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Object helper from `(key, value)` pairs.
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document. Covers the full value grammar the emitter
    /// produces (and standard JSON escapes); numbers parse as `f64`.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value of this fragment, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value of this fragment, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items of this fragment, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", x);
                    } else {
                        let _ = write!(out, "{}", x);
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser over the raw bytes (JSON's structural
/// characters are all ASCII; string content is re-validated as UTF-8 when
/// sliced back out).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by the writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a run of plain bytes, re-validating UTF-8.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(run);
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object([
            ("name", JsonValue::str("a\"b")),
            ("pi", JsonValue::num(3.25)),
            ("whole", JsonValue::num(4.0)),
            ("bad", JsonValue::Num(f64::NAN)),
            ("items", JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null])),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"a\\\"b\""));
        assert!(text.contains("3.25"));
        assert!(text.contains("4.0"));
        assert!(text.contains("\"bad\": null"));
        assert!(text.contains("[]"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn parse_roundtrips_emitter_output() {
        let v = JsonValue::object([
            ("name", JsonValue::str("a\"b\\c\nd")),
            ("pi", JsonValue::num(3.25)),
            ("whole", JsonValue::num(4.0)),
            ("neg", JsonValue::num(-1.5e-3)),
            ("flag", JsonValue::Bool(false)),
            ("nothing", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![
                    JsonValue::num(1.0),
                    JsonValue::object([("k", JsonValue::str("v"))]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        let text = v.pretty();
        let parsed = JsonValue::parse(&text).expect("roundtrip parse failed");
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(parsed.get("pi").unwrap().as_num(), Some(3.25));
        assert_eq!(parsed.get("whole").unwrap().as_num(), Some(4.0));
        assert_eq!(parsed.get("neg").unwrap().as_num(), Some(-1.5e-3));
        assert!(matches!(parsed.get("flag"), Some(JsonValue::Bool(false))));
        assert!(matches!(parsed.get("nothing"), Some(JsonValue::Null)));
        let items = parsed.get("items").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].get("k").unwrap().as_str(), Some("v"));
        // Malformed documents are rejected, not mis-parsed.
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("123 45").is_err());
    }
}
