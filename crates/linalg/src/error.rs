//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the offending operation.
        context: String,
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Observed number of rows.
        nrows: usize,
        /// Observed number of columns.
        ncols: usize,
    },
    /// A matrix is singular (or numerically singular) where invertibility is required.
    Singular,
    /// An iterative method did not converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The caller supplied an invalid parameter (e.g. a zero truncation rank).
    InvalidArgument {
        /// Human-readable description.
        context: String,
    },
    /// A NaN or infinity was detected where finite data is required.
    NonFinite {
        /// Where the non-finite value was detected.
        context: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square, got {nrows}x{ncols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations")
            }
            LinalgError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
            LinalgError::NonFinite { context } => {
                write!(f, "non-finite value detected: {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl From<LinalgError> for koala_error::KoalaError {
    fn from(e: LinalgError) -> Self {
        use koala_error::ErrorKind;
        let kind = match &e {
            LinalgError::DimensionMismatch { .. } | LinalgError::NotSquare { .. } => {
                ErrorKind::Shape
            }
            LinalgError::Singular => ErrorKind::Numerical,
            LinalgError::NoConvergence { .. } => ErrorKind::NoConvergence,
            LinalgError::InvalidArgument { .. } => ErrorKind::InvalidArgument,
            LinalgError::NonFinite { .. } => ErrorKind::NonFinite,
        };
        koala_error::KoalaError::new(kind, e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Build a [`LinalgError::DimensionMismatch`] from format arguments.
#[macro_export]
macro_rules! dim_mismatch {
    ($($arg:tt)*) => {
        $crate::error::LinalgError::DimensionMismatch { context: format!($($arg)*) }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::NotSquare { nrows: 3, ncols: 4 };
        assert!(e.to_string().contains("3x4"));
        let e = LinalgError::NoConvergence { algorithm: "jacobi-svd", iterations: 42 };
        assert!(e.to_string().contains("jacobi-svd"));
        assert!(e.to_string().contains("42"));
        let e = dim_mismatch!("gemm {}x{} * {}x{}", 2, 3, 4, 5);
        assert!(e.to_string().contains("2x3"));
    }
}
