//! Randomized SVD with an implicitly applied operator (paper Algorithm 4).
//!
//! The operator `A` does not need to exist as an explicit matrix — only its
//! action `A * X` and `A^H * Y` on blocks of vectors is required. In the PEPS
//! algorithms the operator is an uncontracted tensor sub-network, and applying
//! it implicitly is what gives IBMPS / two-layer IBMPS their asymptotic
//! advantage (Table II of the paper).

use crate::error::{LinalgError, Result};
use crate::gemm::{matmul, matmul_adj_a};
use crate::matrix::Matrix;
use crate::qr::orthonormalize;
use crate::svd::{svd, Svd};
use rand::Rng;

/// A linear operator `C^{ncols} -> C^{nrows}` that can be applied to blocks of
/// vectors without being materialised.
pub trait LinearOp {
    /// Output dimension.
    fn nrows(&self) -> usize;
    /// Input dimension.
    fn ncols(&self) -> usize;
    /// Apply `A * X` where `X` has shape `(ncols, k)`; result `(nrows, k)`.
    fn apply(&self, x: &Matrix) -> Matrix;
    /// Apply `A^H * Y` where `Y` has shape `(nrows, k)`; result `(ncols, k)`.
    fn apply_adj(&self, y: &Matrix) -> Matrix;
    /// Structural realness of the operator: `true` guarantees it maps real
    /// blocks to real blocks (every tensor/matrix it is built from carries
    /// the [`Matrix::is_real`] hint). [`rsvd`] then draws a *real* sketch, so
    /// the whole iteration — operator applications, QR orthonormalizations,
    /// and the final small SVD — stays on the real-only kernels and the
    /// returned factors carry the hint. Defaults to `false` (unknown).
    fn is_real(&self) -> bool {
        false
    }
}

/// Adapter exposing an explicit matrix as a [`LinearOp`].
pub struct MatOp<'a> {
    matrix: &'a Matrix,
}

impl<'a> MatOp<'a> {
    /// Wrap a matrix reference.
    pub fn new(matrix: &'a Matrix) -> Self {
        MatOp { matrix }
    }
}

impl LinearOp for MatOp<'_> {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }
    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }
    fn apply(&self, x: &Matrix) -> Matrix {
        matmul(self.matrix, x)
    }
    fn apply_adj(&self, y: &Matrix) -> Matrix {
        matmul_adj_a(self.matrix, y)
    }
    fn is_real(&self) -> bool {
        self.matrix.is_real()
    }
}

/// Composition `A * B` of two operators, applied implicitly.
pub struct ComposedOp<L: LinearOp, R: LinearOp> {
    left: L,
    right: R,
}

impl<L: LinearOp, R: LinearOp> ComposedOp<L, R> {
    /// Compose `left * right` (so `apply(x) = left.apply(right.apply(x))`).
    pub fn new(left: L, right: R) -> Self {
        assert_eq!(left.ncols(), right.nrows(), "ComposedOp: inner dimensions do not match");
        ComposedOp { left, right }
    }
}

impl<L: LinearOp, R: LinearOp> LinearOp for ComposedOp<L, R> {
    fn nrows(&self) -> usize {
        self.left.nrows()
    }
    fn ncols(&self) -> usize {
        self.right.ncols()
    }
    fn apply(&self, x: &Matrix) -> Matrix {
        self.left.apply(&self.right.apply(x))
    }
    fn apply_adj(&self, y: &Matrix) -> Matrix {
        self.right.apply_adj(&self.left.apply_adj(y))
    }
    fn is_real(&self) -> bool {
        self.left.is_real() && self.right.is_real()
    }
}

/// Options controlling the randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct RsvdOptions {
    /// Target rank of the approximation.
    pub rank: usize,
    /// Extra columns carried through the iteration for accuracy.
    pub oversample: usize,
    /// Number of subspace (power) iterations (the paper's `k`).
    pub n_iter: usize,
}

impl RsvdOptions {
    /// Sensible defaults for a given rank: 10 oversamples, 2 power iterations.
    pub fn with_rank(rank: usize) -> Self {
        RsvdOptions { rank, oversample: 10, n_iter: 2 }
    }
}

/// Number of fresh-sketch retries after a failed randomized SVD attempt.
pub const MAX_SKETCH_RETRIES: usize = 2;

/// Randomized truncated SVD of an implicitly applied operator
/// (paper Algorithm 4). Returns factors with at most `rank` columns.
///
/// A failed attempt — the inner SVD of the sketch not converging, or the
/// assembled factors containing NaN/Inf — is retried with a fresh random
/// sketch up to [`MAX_SKETCH_RETRIES`] times (recorded on the
/// [`koala_error::recovery`] counters); an unlucky sketch is recoverable,
/// a genuinely corrupted operator is not and the last error propagates.
pub fn rsvd<O: LinearOp, R: Rng + ?Sized>(op: &O, opts: RsvdOptions, rng: &mut R) -> Result<Svd> {
    if opts.rank == 0 {
        return Err(LinalgError::InvalidArgument {
            context: "rsvd: rank must be positive".to_string(),
        });
    }
    let n = op.ncols();
    let m = op.nrows();
    if n == 0 || m == 0 {
        return Ok(Svd { u: Matrix::zeros(m, 0), s: vec![], vh: Matrix::zeros(0, n) });
    }
    let mut last_err = LinalgError::NoConvergence { algorithm: "rsvd", iterations: 0 };
    for attempt in 0..=MAX_SKETCH_RETRIES {
        if attempt > 0 {
            koala_error::recovery::note_rsvd_resketch();
        }
        match rsvd_attempt(op, opts, rng) {
            Ok(f) => return Ok(f),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// One randomized-SVD attempt with a freshly drawn sketch.
fn rsvd_attempt<O: LinearOp, R: Rng + ?Sized>(
    op: &O,
    opts: RsvdOptions,
    rng: &mut R,
) -> Result<Svd> {
    let n = op.ncols();
    let m = op.nrows();
    // The sketch cannot be wider than either dimension of the operator.
    let l = (opts.rank + opts.oversample).min(n).min(m);

    // Q <- random n x l block with entries in [-1, 1] (paper's initialisation).
    // For a structurally real operator the sketch is drawn real, so every
    // operator application and orthonormalization below stays on the
    // real-only kernels and the returned factors carry the realness hint.
    let op_real = op.is_real();
    let mut q = Matrix::zeros(n, l);
    for v in q.data_mut() {
        *v = if op_real {
            crate::scalar::c64(rng.gen_range(-1.0..1.0), 0.0)
        } else {
            crate::scalar::c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        };
    }
    if op_real {
        q.assume_real();
    }

    // P <- orth(A Q)
    let mut p = orthonormalize(&op.apply(&q));
    // Subspace iteration: Q <- orth(A^H P); P <- orth(A Q)
    for _ in 0..opts.n_iter {
        q = orthonormalize(&op.apply_adj(&p));
        p = orthonormalize(&op.apply(&q));
    }

    // B = P^H A (l x n), represented implicitly as (A^H P)^H. Instead of
    // materialising the adjoint and factorizing B, factorize the tall sketch
    // A^H P = W S Z^H directly; then B = Z S W^H, so U = P Z (computed with
    // the adjoint of Z^H fused into the GEMM) and V^H = W^H (assembled
    // element-wise at the truncated size).
    let ahp = op.apply_adj(&p); // n x l
    let t = svd(&ahp)?;
    let k = opts.rank.min(t.s.len());
    let zh_k = t.vh.truncate_rows(k); // Z^H, leading k rows
    let u = crate::gemm::gemm(crate::gemm::Op::None, crate::gemm::Op::Adjoint, &p, &zh_k);
    let mut vh = Matrix::zeros(k, n);
    for i in 0..k {
        for j in 0..n {
            vh[(i, j)] = t.u[(j, i)].conj();
        }
    }
    // Conjugated copies of real factors are real (IndexMut dropped the hint).
    if t.u.is_real() {
        vh.assume_real();
    }
    let s = t.s[..k].to_vec();
    if !s.iter().all(|x| x.is_finite()) {
        koala_error::recovery::note_nonfinite_detection();
        return Err(LinalgError::NonFinite { context: "rsvd: singular values".to_string() });
    }
    u.validate_finite("rsvd U factor")?;
    vh.validate_finite("rsvd Vh factor")?;
    Ok(Svd { u, s, vh })
}

/// Randomized truncated SVD of an explicit matrix (convenience wrapper).
pub fn rsvd_matrix<R: Rng + ?Sized>(a: &Matrix, opts: RsvdOptions, rng: &mut R) -> Result<Svd> {
    rsvd(&MatOp::new(a), opts, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::scale_cols;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a matrix with a prescribed, rapidly decaying spectrum.
    fn matrix_with_spectrum(m: usize, n: usize, spectrum: &[f64], rng: &mut StdRng) -> Matrix {
        let k = spectrum.len();
        let u = orthonormalize(&Matrix::random(m, k, rng));
        let v = orthonormalize(&Matrix::random(n, k, rng));
        matmul(&scale_cols(&u, spectrum), &v.adjoint())
    }

    #[test]
    fn recovers_low_rank_matrix_exactly() {
        let mut rng = StdRng::seed_from_u64(70);
        let spectrum = [5.0, 3.0, 1.0];
        let a = matrix_with_spectrum(30, 20, &spectrum, &mut rng);
        let f = rsvd_matrix(&a, RsvdOptions::with_rank(3), &mut rng).unwrap();
        assert!(f.reconstruct().approx_eq(&a, 1e-9));
        for (got, want) in f.s.iter().zip(spectrum.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn truncation_close_to_optimal_for_decaying_spectrum() {
        let mut rng = StdRng::seed_from_u64(71);
        let spectrum: Vec<f64> = (0..12).map(|i| (2.0f64).powi(-i)).collect();
        let a = matrix_with_spectrum(40, 25, &spectrum, &mut rng);
        let k = 5;
        let f =
            rsvd_matrix(&a, RsvdOptions { rank: k, oversample: 10, n_iter: 3 }, &mut rng).unwrap();
        let err = (&a - &f.reconstruct()).norm_fro();
        let optimal: f64 = spectrum[k..].iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(err < 2.0 * optimal + 1e-12, "rsvd error {err} vs optimal {optimal}");
    }

    #[test]
    fn implicit_composition_matches_explicit_product() {
        let mut rng = StdRng::seed_from_u64(72);
        let a = Matrix::random(18, 7, &mut rng);
        let b = Matrix::random(7, 22, &mut rng);
        let ab = matmul(&a, &b);
        let op = ComposedOp::new(MatOp::new(&a), MatOp::new(&b));
        assert_eq!(op.nrows(), 18);
        assert_eq!(op.ncols(), 22);
        let f1 = rsvd(&op, RsvdOptions::with_rank(7), &mut rng).unwrap();
        let f2 = svd(&ab).unwrap().truncated(7);
        for (x, y) in f1.s.iter().zip(f2.s.iter()) {
            assert!((x - y).abs() < 1e-8 * f2.s[0].max(1.0));
        }
        assert!(f1.reconstruct().approx_eq(&ab, 1e-8));
    }

    #[test]
    fn rank_larger_than_dimensions_is_clamped() {
        let mut rng = StdRng::seed_from_u64(73);
        let a = Matrix::random(5, 4, &mut rng);
        let f = rsvd_matrix(&a, RsvdOptions::with_rank(100), &mut rng).unwrap();
        assert!(f.rank() <= 4);
        assert!(f.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn zero_rank_rejected() {
        let mut rng = StdRng::seed_from_u64(74);
        let a = Matrix::random(3, 3, &mut rng);
        assert!(
            rsvd_matrix(&a, RsvdOptions { rank: 0, oversample: 0, n_iter: 0 }, &mut rng).is_err()
        );
    }

    /// Operator that corrupts its adjoint applications for the first few
    /// calls, then behaves like the wrapped matrix — models a transient
    /// fault. (Corruption on the forward `apply` is laundered by the MGS
    /// rank-deficiency handling inside `orthonormalize`; the adjoint feeds
    /// the inner SVD directly, which is where the NaN guard fires.)
    struct FlakyOp<'a> {
        inner: MatOp<'a>,
        poisoned_applies: std::cell::Cell<usize>,
    }

    impl LinearOp for FlakyOp<'_> {
        fn nrows(&self) -> usize {
            self.inner.nrows()
        }
        fn ncols(&self) -> usize {
            self.inner.ncols()
        }
        fn apply(&self, x: &Matrix) -> Matrix {
            self.inner.apply(x)
        }
        fn apply_adj(&self, y: &Matrix) -> Matrix {
            let left = self.poisoned_applies.get();
            let mut out = self.inner.apply_adj(y);
            if left > 0 {
                self.poisoned_applies.set(left - 1);
                out[(0, 0)] = crate::scalar::c64(f64::NAN, 0.0);
            }
            out
        }
        fn is_real(&self) -> bool {
            self.inner.is_real()
        }
    }

    #[test]
    fn transient_corruption_is_recovered_by_a_fresh_sketch() {
        let mut rng = StdRng::seed_from_u64(76);
        let a = Matrix::random(20, 12, &mut rng);
        // Poison every adjoint application of the first attempt (n_iter power
        // iterations + the final sketch), so attempt #1 must fail the NaN
        // guard and attempt #2 runs clean.
        let op = FlakyOp { inner: MatOp::new(&a), poisoned_applies: std::cell::Cell::new(3) };
        let before = koala_error::recovery::snapshot();
        let f = rsvd(&op, RsvdOptions { rank: 12, oversample: 10, n_iter: 2 }, &mut rng).unwrap();
        let after = koala_error::recovery::snapshot();
        assert!(after.rsvd_resketches > before.rsvd_resketches);
        assert!(after.nonfinite_detections > before.nonfinite_detections);
        assert!(f.reconstruct().approx_eq(&a, 1e-8), "retry must produce clean factors");
    }

    #[test]
    fn persistent_corruption_exhausts_retries() {
        let mut rng = StdRng::seed_from_u64(77);
        let a = Matrix::random(10, 6, &mut rng);
        let op =
            FlakyOp { inner: MatOp::new(&a), poisoned_applies: std::cell::Cell::new(usize::MAX) };
        assert!(rsvd(&op, RsvdOptions::with_rank(4), &mut rng).is_err());
    }

    #[test]
    fn factors_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(75);
        let a = Matrix::random(25, 16, &mut rng);
        let f = rsvd_matrix(&a, RsvdOptions::with_rank(6), &mut rng).unwrap();
        assert!(f.u.has_orthonormal_cols(1e-9));
        assert!(f.vh.adjoint().has_orthonormal_cols(1e-9));
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
