//! Complex double-precision scalar type used throughout the stack.
//!
//! The whole library works over `C64` (a complex number with `f64` components).
//! Real-valued physics (e.g. the transverse-field Ising Hamiltonian) simply has
//! vanishing imaginary parts; quantum gates and random-circuit states are
//! genuinely complex.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Convenience constructor: `c64(re, im)`.
#[inline(always)]
pub fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Create a new complex number.
    #[inline(always)]
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Create a purely real complex number.
    #[inline(always)]
    pub fn from_real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) of the complex number in radians.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64 { re: self.re / d, im: -self.im / d }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return C64::ZERO;
        }
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        C64 { re, im: if self.im >= 0.0 { im_mag } else { -im_mag } }
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let m = self.re.exp();
        C64 { re: m * self.im.cos(), im: m * self.im.sin() }
    }

    /// `e^{i theta}` for a real angle.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// Fused multiply-add: `self + a * b`, written out to let the optimiser
    /// keep everything in registers in the GEMM inner loop.
    #[inline(always)]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        C64 { re: self.re + a.re * b.re - a.im * b.im, im: self.im + a.re * b.im + a.im * b.re }
    }

    /// True if either component is NaN.
    #[inline(always)]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline(always)]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on both components.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// `z / |z|`, or 1 if `z == 0` (the "sign" used in numerical linear algebra).
    #[inline]
    pub fn signum(self) -> C64 {
        let a = self.abs();
        if a == 0.0 {
            C64::ONE
        } else {
            self.scale(1.0 / a)
        }
    }

    /// Raise to a real power through polar form.
    pub fn powf(self, p: f64) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return C64::ZERO;
        }
        let theta = self.arg();
        C64::cis(theta * p).scale(r.powf(p))
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }
}

impl From<(f64, f64)> for C64 {
    #[inline(always)]
    fn from((re, im): (f64, f64)) -> Self {
        C64 { re, im }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: C64) -> C64 {
        C64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, rhs: C64) -> C64 {
        C64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        C64 { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline(always)]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1 by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: f64) -> C64 {
        C64 { re: self.re + rhs, im: self.im }
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> C64 {
        C64 { re: self.re - rhs, im: self.im }
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_basics() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert!((a + b).approx_eq(c64(-2.0, 2.5), TOL));
        assert!((a - b).approx_eq(c64(4.0, 1.5), TOL));
        assert!((a * b).approx_eq(c64(-3.0 - 1.0, 0.5 - 6.0), TOL));
        assert!(((a / b) * b).approx_eq(a, TOL));
    }

    #[test]
    fn conjugate_and_modulus() {
        let a = c64(3.0, -4.0);
        assert_eq!(a.conj(), c64(3.0, 4.0));
        assert!((a.abs() - 5.0).abs() < TOL);
        assert!((a.norm_sqr() - 25.0).abs() < TOL);
        assert!((a * a.conj()).approx_eq(c64(25.0, 0.0), TOL));
    }

    #[test]
    fn inverse_and_division() {
        let a = c64(2.0, -1.0);
        assert!((a * a.inv()).approx_eq(C64::ONE, TOL));
        assert!((C64::ONE / a).approx_eq(a.inv(), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(0.0, 2.0), c64(-1.0, 0.0), c64(3.0, -7.0), C64::ZERO] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt({z}) = {s}");
        }
    }

    #[test]
    fn exp_and_cis() {
        let theta = 0.7;
        assert!(C64::cis(theta).approx_eq(c64(theta.cos(), theta.sin()), TOL));
        assert!((C64::I * std::f64::consts::PI).exp().approx_eq(c64(-1.0, 0.0), 1e-12));
        assert!(C64::ZERO.exp().approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn signum_is_unit_modulus() {
        let z = c64(-3.0, 4.0);
        assert!((z.signum().abs() - 1.0).abs() < TOL);
        assert!(C64::ZERO.signum().approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = c64(0.5, -0.25);
        let a = c64(1.5, 2.0);
        let b = c64(-0.75, 0.3);
        assert!(acc.mul_add(a, b).approx_eq(acc + a * b, TOL));
    }

    #[test]
    fn real_scalar_mixing() {
        let a = c64(1.0, -2.0);
        assert!((a * 2.0).approx_eq(c64(2.0, -4.0), TOL));
        assert!((2.0 * a).approx_eq(c64(2.0, -4.0), TOL));
        assert!((a / 2.0).approx_eq(c64(0.5, -1.0), TOL));
        assert!((a + 1.0).approx_eq(c64(2.0, -2.0), TOL));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [c64(1.0, 1.0), c64(2.0, -0.5), c64(-0.5, 0.25)];
        let s: C64 = v.iter().sum();
        assert!(s.approx_eq(c64(2.5, 0.75), TOL));
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = c64(1.2, -0.7);
        assert!(z.powf(2.0).approx_eq(z * z, 1e-10));
        assert!(z.powf(0.5).approx_eq(z.sqrt(), 1e-10));
    }
}
