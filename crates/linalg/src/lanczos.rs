//! Lanczos iteration for extremal eigenpairs of large Hermitian operators.
//!
//! Used by the application layer to compute reference ground-state energies of
//! spin Hamiltonians on the full 2^n state vector (the "state vector" curves
//! of Figures 13 and 14) without ever forming the Hamiltonian matrix.

use crate::eig::eigh;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::scalar::{c64, C64};
use rand::Rng;

/// A Hermitian operator acting on vectors of a fixed dimension.
pub trait HermitianOp {
    /// Dimension of the underlying vector space.
    fn dim(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[C64]) -> Vec<C64>;
}

/// Hermitian matrix wrapper (mostly for tests).
pub struct DenseHermitianOp<'a> {
    matrix: &'a Matrix,
}

impl<'a> DenseHermitianOp<'a> {
    /// Wrap a Hermitian matrix.
    pub fn new(matrix: &'a Matrix) -> Self {
        assert_eq!(matrix.nrows(), matrix.ncols());
        DenseHermitianOp { matrix }
    }
}

impl HermitianOp for DenseHermitianOp<'_> {
    fn dim(&self) -> usize {
        self.matrix.nrows()
    }
    fn apply(&self, x: &[C64]) -> Vec<C64> {
        self.matrix.matvec(x)
    }
}

/// Result of a Lanczos ground-state computation.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Smallest eigenvalue found.
    pub value: f64,
    /// Corresponding normalized eigenvector.
    pub vector: Vec<C64>,
    /// Number of Krylov vectors actually used.
    pub iterations: usize,
}

fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
}

fn norm(a: &[C64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

fn axpy(y: &mut [C64], alpha: C64, x: &[C64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = yi.mul_add(alpha, *xi);
    }
}

/// Compute the smallest eigenpair of a Hermitian operator with Lanczos
/// iteration (full reorthogonalization, restart-free).
///
/// `max_krylov` bounds the Krylov space dimension; `tol` is the residual
/// tolerance on `||A v - lambda v||`.
pub fn lanczos_ground_state<O: HermitianOp, R: Rng + ?Sized>(
    op: &O,
    max_krylov: usize,
    tol: f64,
    rng: &mut R,
) -> Result<LanczosResult> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument { context: "lanczos: empty operator".into() });
    }
    let m = max_krylov.min(n).max(1);

    // Random normalized start vector.
    let mut v0: Vec<C64> =
        (0..n).map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
    let nv = norm(&v0);
    v0.iter_mut().for_each(|z| *z = z.scale(1.0 / nv));

    let mut basis: Vec<Vec<C64>> = vec![v0];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();

    let mut best: Option<LanczosResult> = None;

    for j in 0..m {
        let vj = basis[j].clone();
        let mut w = op.apply(&vj);
        let alpha = dot(&vj, &w).re;
        alphas.push(alpha);
        // w <- w - alpha v_j - beta_{j-1} v_{j-1}
        axpy(&mut w, c64(-alpha, 0.0), &vj);
        if j > 0 {
            let beta_prev = betas[j - 1];
            let prev = basis[j - 1].clone();
            axpy(&mut w, c64(-beta_prev, 0.0), &prev);
        }
        // Full reorthogonalization against the whole basis (twice).
        for _ in 0..2 {
            for b in &basis {
                let proj = dot(b, &w);
                axpy(&mut w, -proj, b);
            }
        }

        // Solve the small tridiagonal problem to monitor convergence.
        let k = alphas.len();
        let mut t = Matrix::zeros(k, k);
        for i in 0..k {
            t[(i, i)] = c64(alphas[i], 0.0);
            if i + 1 < k {
                t[(i, i + 1)] = c64(betas[i], 0.0);
                t[(i + 1, i)] = c64(betas[i], 0.0);
            }
        }
        let e = eigh(&t)?;
        let lambda = e.values[0];
        // Ritz vector in the original space.
        let mut ritz = vec![C64::ZERO; n];
        for (i, b) in basis.iter().enumerate() {
            let coeff = e.vectors[(i, 0)];
            axpy(&mut ritz, coeff, b);
        }
        let nr = norm(&ritz);
        ritz.iter_mut().for_each(|z| *z = z.scale(1.0 / nr));
        // Residual norm.
        let av = op.apply(&ritz);
        let mut res = av.clone();
        axpy(&mut res, c64(-lambda, 0.0), &ritz);
        let resid = norm(&res);
        let result = LanczosResult { value: lambda, vector: ritz, iterations: k };
        let improved = best.as_ref().is_none_or(|b| lambda < b.value + 1e-14);
        if improved {
            best = Some(result);
        }
        if resid < tol {
            if let Some(b) = best.take() {
                return Ok(b);
            }
        }

        let beta = norm(&w);
        if beta < 1e-14 {
            // Krylov space exhausted (exact invariant subspace reached).
            break;
        }
        betas.push(beta);
        w.iter_mut().for_each(|z| *z = z.scale(1.0 / beta));
        basis.push(w);
    }

    best.ok_or(LinalgError::NoConvergence { algorithm: "lanczos", iterations: m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_smallest_eigenvalue_of_diagonal() {
        let mut rng = StdRng::seed_from_u64(90);
        let a = Matrix::from_diag_real(&[4.0, -2.0, 7.0, 0.5, -1.5]);
        let r = lanczos_ground_state(&DenseHermitianOp::new(&a), 20, 1e-10, &mut rng).unwrap();
        assert!((r.value + 2.0).abs() < 1e-8);
    }

    #[test]
    fn matches_dense_eigensolver_on_random_hermitian() {
        let mut rng = StdRng::seed_from_u64(91);
        let a = Matrix::random_hermitian(40, &mut rng);
        let dense = eigh(&a).unwrap();
        let r = lanczos_ground_state(&DenseHermitianOp::new(&a), 60, 1e-9, &mut rng).unwrap();
        assert!((r.value - dense.values[0]).abs() < 1e-7, "{} vs {}", r.value, dense.values[0]);
        // Eigenvector check: A v ≈ lambda v.
        let av = a.matvec(&r.vector);
        let err: f64 = av
            .iter()
            .zip(r.vector.iter())
            .map(|(x, v)| (*x - v.scale(r.value)).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6);
    }

    #[test]
    fn small_krylov_space_still_returns_upper_bound() {
        let mut rng = StdRng::seed_from_u64(92);
        let a = Matrix::random_hermitian(30, &mut rng);
        let dense = eigh(&a).unwrap();
        let r = lanczos_ground_state(&DenseHermitianOp::new(&a), 5, 1e-12, &mut rng).unwrap();
        // Variational property: Ritz value >= true ground state.
        assert!(r.value >= dense.values[0] - 1e-9);
    }

    #[test]
    fn dimension_one_operator() {
        let mut rng = StdRng::seed_from_u64(93);
        let a = Matrix::from_diag_real(&[3.5]);
        let r = lanczos_ground_state(&DenseHermitianOp::new(&a), 3, 1e-12, &mut rng).unwrap();
        assert!((r.value - 3.5).abs() < 1e-10);
    }
}
