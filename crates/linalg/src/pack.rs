//! Operand packing for the blocked GEMM, with transposition fused in.
//!
//! A cache block of each operand is repacked into panels laid out exactly as
//! the microkernel consumes them (see [`crate::microkernel`]). Two panel
//! formats exist:
//!
//! * **Split-complex** ([`pack_a`] / [`pack_b`]): A blocks become a sequence
//!   of `MR`-row strips, B blocks a sequence of `NR`-column strips, each strip
//!   storing, per depth index, the strip's real parts followed by its
//!   imaginary parts. While gathering, the packers also *detect* whether every
//!   imaginary part in the block is exactly zero and report it — the compare
//!   is free next to the memory traffic, and it lets
//!   [`mod@crate::gemm`] drop to the real microkernel per depth block even
//!   when the caller could not assert realness structurally.
//! * **Real-only** ([`pack_a_real`] / [`pack_b_real`]): the `f64`-panel
//!   variant used when the caller asserts both operands are real (via the
//!   [`Matrix::is_real`](crate::matrix::Matrix::is_real) hint). Only the real
//!   parts are gathered — half the packing traffic and half the panel
//!   footprint of the split-complex format — and the strips are sized for
//!   the wider `MR_REAL x NR_REAL = 8 x 16` real register tile
//!   ([`crate::microkernel::microkernel_real_wide`]).
//!
//! Crucially, the *effective* operand is gathered element-by-element here, so
//! [`Op::Transpose`] and [`Op::Adjoint`] (and any conjugation) cost nothing
//! beyond a different read stride during packing — the old code path that
//! materialised a full transposed copy of the operand is gone. The same holds
//! for the real-only packers: no complex (or transposed) copy of a real
//! operand is ever materialised, a property pinned down by
//! `linalg/tests/alloc.rs`.

use crate::gemm::Op;
use crate::microkernel::{MR, MR_REAL, NR, NR_REAL};
use crate::scalar::C64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of A-panel pack calls (split-complex and real combined).
static PACK_A_CALLS: AtomicU64 = AtomicU64::new(0);
/// Global count of B-panel pack calls (split-complex and real combined).
static PACK_B_CALLS: AtomicU64 = AtomicU64::new(0);

/// Read the `(A, B)` pack-call counters.
///
/// These exist to pin the executor's panel-sharing contract: in the shared
/// schedule a B panel is packed exactly once per `(depth-block,
/// column-block)` pair no matter how many row tiles consume it or how many
/// threads run — `linalg/tests/exec_billing.rs` asserts the counts are
/// invariant across thread counts.
pub fn pack_counters() -> (u64, u64) {
    (PACK_A_CALLS.load(Ordering::Relaxed), PACK_B_CALLS.load(Ordering::Relaxed))
}

/// Reset both pack-call counters.
pub fn reset_pack_counters() {
    PACK_A_CALLS.store(0, Ordering::Relaxed);
    PACK_B_CALLS.store(0, Ordering::Relaxed);
}

/// Read element `(i, p)` of the effective left operand.
///
/// For `Op::None` the stored matrix is `m x k` with row stride `lda`; for
/// `Op::Transpose` / `Op::Adjoint` it is `k x m` and the roles of `i`/`p`
/// swap (with conjugation for the adjoint).
#[inline(always)]
fn read_a(op: Op, a: &[C64], lda: usize, i: usize, p: usize) -> C64 {
    match op {
        Op::None => a[i * lda + p],
        Op::Transpose => a[p * lda + i],
        Op::Adjoint => a[p * lda + i].conj(),
    }
}

/// Read element `(p, j)` of the effective right operand.
#[inline(always)]
fn read_b(op: Op, b: &[C64], ldb: usize, p: usize, j: usize) -> C64 {
    match op {
        Op::None => b[p * ldb + j],
        Op::Transpose => b[j * ldb + p],
        Op::Adjoint => b[j * ldb + p].conj(),
    }
}

/// Number of strips needed to cover `len` rows/columns of panel height `unit`.
#[inline(always)]
pub fn strips(len: usize, unit: usize) -> usize {
    len.div_ceil(unit)
}

/// Pack the `mc x kc` block of the effective A starting at `(i0, p0)` into
/// `out` as `ceil(mc / MR)` split-complex strips of `kc * 2 * MR` floats each,
/// zero-padding the ragged final strip.
///
/// Returns `true` iff every imaginary part in the block is exactly zero
/// (`-0.0` counts as zero), so the caller may run the real microkernel over
/// the packed panel's real lanes.
pub fn pack_a(
    op: Op,
    a: &[C64],
    lda: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    out: &mut Vec<f64>,
) -> bool {
    PACK_A_CALLS.fetch_add(1, Ordering::Relaxed);
    let n_strips = strips(mc, MR);
    out.clear();
    out.resize(n_strips * kc * 2 * MR, 0.0);
    let mut all_real = true;
    for s in 0..n_strips {
        let rows = MR.min(mc - s * MR);
        let strip = &mut out[s * kc * 2 * MR..(s + 1) * kc * 2 * MR];
        for p in 0..kc {
            let group = &mut strip[p * 2 * MR..(p + 1) * 2 * MR];
            for r in 0..rows {
                let z = read_a(op, a, lda, i0 + s * MR + r, p0 + p);
                group[r] = z.re;
                group[MR + r] = z.im;
                all_real &= z.im == 0.0;
            }
            // Padding rows stay zero from the resize above.
        }
    }
    all_real
}

/// Pack the `kc x nc` block of the effective B starting at `(p0, j0)` into
/// `out` as `ceil(nc / NR)` split-complex strips of `kc * 2 * NR` floats each,
/// zero-padding the ragged final strip. Returns the same realness verdict as
/// [`pack_a`].
pub fn pack_b(
    op: Op,
    b: &[C64],
    ldb: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut Vec<f64>,
) -> bool {
    PACK_B_CALLS.fetch_add(1, Ordering::Relaxed);
    let n_strips = strips(nc, NR);
    out.clear();
    out.resize(n_strips * kc * 2 * NR, 0.0);
    let mut all_real = true;
    for s in 0..n_strips {
        let cols = NR.min(nc - s * NR);
        let strip = &mut out[s * kc * 2 * NR..(s + 1) * kc * 2 * NR];
        for p in 0..kc {
            let group = &mut strip[p * 2 * NR..(p + 1) * 2 * NR];
            for c in 0..cols {
                let z = read_b(op, b, ldb, p0 + p, j0 + s * NR + c);
                group[c] = z.re;
                group[NR + c] = z.im;
                all_real &= z.im == 0.0;
            }
        }
    }
    all_real
}

/// Pack the `mc x kc` block of the effective A into real-only panels:
/// `ceil(mc / MR_REAL)` strips of `kc * MR_REAL` floats (real parts only),
/// zero-padding the ragged final strip.
///
/// The caller must guarantee the operand is real; the imaginary parts are not
/// even read (for real data `Op::Adjoint` degenerates to `Op::Transpose`, so
/// conjugation is a no-op by assumption).
pub fn pack_a_real(
    op: Op,
    a: &[C64],
    lda: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    out: &mut Vec<f64>,
) {
    PACK_A_CALLS.fetch_add(1, Ordering::Relaxed);
    let n_strips = strips(mc, MR_REAL);
    out.clear();
    out.resize(n_strips * kc * MR_REAL, 0.0);
    for s in 0..n_strips {
        let rows = MR_REAL.min(mc - s * MR_REAL);
        let strip = &mut out[s * kc * MR_REAL..(s + 1) * kc * MR_REAL];
        for p in 0..kc {
            let group = &mut strip[p * MR_REAL..(p + 1) * MR_REAL];
            for r in 0..rows {
                group[r] = read_a(op, a, lda, i0 + s * MR_REAL + r, p0 + p).re;
            }
        }
    }
}

/// Pack the `kc x nc` block of the effective B into real-only panels:
/// `ceil(nc / NR_REAL)` strips of `kc * NR_REAL` floats (real parts only).
/// Same realness contract as [`pack_a_real`].
pub fn pack_b_real(
    op: Op,
    b: &[C64],
    ldb: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut Vec<f64>,
) {
    PACK_B_CALLS.fetch_add(1, Ordering::Relaxed);
    let n_strips = strips(nc, NR_REAL);
    out.clear();
    out.resize(n_strips * kc * NR_REAL, 0.0);
    for s in 0..n_strips {
        let cols = NR_REAL.min(nc - s * NR_REAL);
        let strip = &mut out[s * kc * NR_REAL..(s + 1) * kc * NR_REAL];
        for p in 0..kc {
            let group = &mut strip[p * NR_REAL..(p + 1) * NR_REAL];
            for c in 0..cols {
                group[c] = read_b(op, b, ldb, p0 + p, j0 + s * NR_REAL + c).re;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::c64;

    fn sample(m: usize, n: usize) -> Vec<C64> {
        (0..m * n).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect()
    }

    fn sample_real(m: usize, n: usize) -> Vec<C64> {
        (0..m * n).map(|i| c64(i as f64 * 0.75 - 3.0, 0.0)).collect()
    }

    #[test]
    fn pack_a_fuses_transpose_and_adjoint() {
        let (m, k) = (5, 3);
        let plain = sample(m, k); // stored m x k
        let stored_t = {
            // stored k x m, so its transpose equals `plain`
            let mut t = vec![C64::ZERO; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = plain[i * k + p];
                }
            }
            t
        };
        let mut packed_none = Vec::new();
        let mut packed_t = Vec::new();
        let mut packed_h = Vec::new();
        assert!(!pack_a(Op::None, &plain, k, 0, m, 0, k, &mut packed_none));
        assert!(!pack_a(Op::Transpose, &stored_t, m, 0, m, 0, k, &mut packed_t));
        let conj_t: Vec<C64> = stored_t.iter().map(|z| z.conj()).collect();
        assert!(!pack_a(Op::Adjoint, &conj_t, m, 0, m, 0, k, &mut packed_h));
        assert_eq!(packed_none, packed_t);
        assert_eq!(packed_none, packed_h);
        // Padded rows of the ragged final strip are zero.
        let last = strips(m, MR) - 1;
        let strip = &packed_none[last * k * 2 * MR..];
        for p in 0..k {
            for r in (m - last * MR)..MR {
                assert_eq!(strip[p * 2 * MR + r], 0.0);
                assert_eq!(strip[p * 2 * MR + MR + r], 0.0);
            }
        }
    }

    #[test]
    fn pack_b_layout_roundtrip() {
        let (k, n) = (4, 10); // one full strip + one ragged strip
        let b = sample(k, n);
        let mut packed = Vec::new();
        assert!(!pack_b(Op::None, &b, n, 0, k, 0, n, &mut packed));
        assert_eq!(packed.len(), strips(n, NR) * k * 2 * NR);
        for p in 0..k {
            for j in 0..n {
                let s = j / NR;
                let c = j % NR;
                let group = &packed[s * k * 2 * NR + p * 2 * NR..];
                assert_eq!(group[c], b[p * n + j].re);
                assert_eq!(group[NR + c], b[p * n + j].im);
            }
        }
    }

    #[test]
    fn complex_packers_detect_real_blocks() {
        let (m, k) = (7, 4);
        let real = sample_real(m, k);
        let mut out = Vec::new();
        assert!(pack_a(Op::None, &real, k, 0, m, 0, k, &mut out));
        assert!(pack_b(Op::None, &real, k, 0, m, 0, k, &mut out));
        // Negative zero still counts as real; a genuine imaginary part breaks
        // the verdict.
        let mut neg_zero = real.clone();
        neg_zero[3].im = -0.0;
        assert!(pack_a(Op::None, &neg_zero, k, 0, m, 0, k, &mut out));
        let mut tainted = real.clone();
        tainted[m * k - 1].im = 1e-300;
        assert!(!pack_a(Op::None, &tainted, k, 0, m, 0, k, &mut out));
        assert!(!pack_b(Op::None, &tainted, k, 0, m, 0, k, &mut out));
    }

    #[test]
    fn real_packers_gather_the_effective_operand_in_wide_strips() {
        for op in [Op::None, Op::Transpose, Op::Adjoint] {
            // A side: effective m x k, ragged final strip (m = 11 > MR_REAL).
            let (m, k) = (11, 5);
            let (rows, cols) = if op == Op::None { (m, k) } else { (k, m) };
            let stored = sample_real(rows, cols);
            let mut real_only = Vec::new();
            pack_a_real(op, &stored, cols, 0, m, 0, k, &mut real_only);
            assert_eq!(real_only.len(), strips(m, MR_REAL) * k * MR_REAL);
            for i in 0..m {
                let (s, r) = (i / MR_REAL, i % MR_REAL);
                for p in 0..k {
                    let want = read_a(op, &stored, cols, i, p).re;
                    assert_eq!(real_only[s * k * MR_REAL + p * MR_REAL + r], want);
                }
            }
            // Padding rows of the ragged final strip stay zero.
            let last = strips(m, MR_REAL) - 1;
            for p in 0..k {
                for r in (m - last * MR_REAL)..MR_REAL {
                    assert_eq!(real_only[last * k * MR_REAL + p * MR_REAL + r], 0.0);
                }
            }

            // B side: effective k x n, ragged final strip (n = 18 > NR_REAL).
            let (bk, bn) = (4, 18);
            let (brows, bcols) = if op == Op::None { (bk, bn) } else { (bn, bk) };
            let bstored = sample_real(brows, bcols);
            let mut real_b = Vec::new();
            pack_b_real(op, &bstored, bcols, 0, bk, 0, bn, &mut real_b);
            assert_eq!(real_b.len(), strips(bn, NR_REAL) * bk * NR_REAL);
            for j in 0..bn {
                let (s, c) = (j / NR_REAL, j % NR_REAL);
                for p in 0..bk {
                    let want = read_b(op, &bstored, bcols, p, j).re;
                    assert_eq!(real_b[s * bk * NR_REAL + p * NR_REAL + c], want);
                }
            }
        }
    }
}
