//! Operand packing for the blocked GEMM, with transposition fused in.
//!
//! A cache block of each operand is repacked into split-complex panels laid
//! out exactly as the microkernel consumes them (see [`crate::microkernel`]):
//! A blocks become a sequence of `MR`-row strips, B blocks a sequence of
//! `NR`-column strips, each strip storing, per depth index, the strip's real
//! parts followed by its imaginary parts.
//!
//! Crucially, the *effective* operand is gathered element-by-element here, so
//! [`Op::Transpose`] and [`Op::Adjoint`] (and any conjugation) cost nothing
//! beyond a different read stride during packing — the old code path that
//! materialised a full transposed copy of the operand is gone.

use crate::gemm::Op;
use crate::microkernel::{MR, NR};
use crate::scalar::C64;

/// Read element `(i, p)` of the effective left operand.
///
/// For `Op::None` the stored matrix is `m x k` with row stride `lda`; for
/// `Op::Transpose` / `Op::Adjoint` it is `k x m` and the roles of `i`/`p`
/// swap (with conjugation for the adjoint).
#[inline(always)]
fn read_a(op: Op, a: &[C64], lda: usize, i: usize, p: usize) -> C64 {
    match op {
        Op::None => a[i * lda + p],
        Op::Transpose => a[p * lda + i],
        Op::Adjoint => a[p * lda + i].conj(),
    }
}

/// Read element `(p, j)` of the effective right operand.
#[inline(always)]
fn read_b(op: Op, b: &[C64], ldb: usize, p: usize, j: usize) -> C64 {
    match op {
        Op::None => b[p * ldb + j],
        Op::Transpose => b[j * ldb + p],
        Op::Adjoint => b[j * ldb + p].conj(),
    }
}

/// Number of strips needed to cover `len` rows/columns of panel height `unit`.
#[inline(always)]
pub fn strips(len: usize, unit: usize) -> usize {
    len.div_ceil(unit)
}

/// Pack the `mc x kc` block of the effective A starting at `(i0, p0)` into
/// `out` as `ceil(mc / MR)` strips of `kc * 2 * MR` floats each, zero-padding
/// the ragged final strip.
pub fn pack_a(
    op: Op,
    a: &[C64],
    lda: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    out: &mut Vec<f64>,
) {
    let n_strips = strips(mc, MR);
    out.clear();
    out.resize(n_strips * kc * 2 * MR, 0.0);
    for s in 0..n_strips {
        let rows = MR.min(mc - s * MR);
        let strip = &mut out[s * kc * 2 * MR..(s + 1) * kc * 2 * MR];
        for p in 0..kc {
            let group = &mut strip[p * 2 * MR..(p + 1) * 2 * MR];
            for r in 0..rows {
                let z = read_a(op, a, lda, i0 + s * MR + r, p0 + p);
                group[r] = z.re;
                group[MR + r] = z.im;
            }
            // Padding rows stay zero from the resize above.
        }
    }
}

/// Pack the `kc x nc` block of the effective B starting at `(p0, j0)` into
/// `out` as `ceil(nc / NR)` strips of `kc * 2 * NR` floats each, zero-padding
/// the ragged final strip.
pub fn pack_b(
    op: Op,
    b: &[C64],
    ldb: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut Vec<f64>,
) {
    let n_strips = strips(nc, NR);
    out.clear();
    out.resize(n_strips * kc * 2 * NR, 0.0);
    for s in 0..n_strips {
        let cols = NR.min(nc - s * NR);
        let strip = &mut out[s * kc * 2 * NR..(s + 1) * kc * 2 * NR];
        for p in 0..kc {
            let group = &mut strip[p * 2 * NR..(p + 1) * 2 * NR];
            for c in 0..cols {
                let z = read_b(op, b, ldb, p0 + p, j0 + s * NR + c);
                group[c] = z.re;
                group[NR + c] = z.im;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::c64;

    fn sample(m: usize, n: usize) -> Vec<C64> {
        (0..m * n).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect()
    }

    #[test]
    fn pack_a_fuses_transpose_and_adjoint() {
        let (m, k) = (5, 3);
        let plain = sample(m, k); // stored m x k
        let stored_t = {
            // stored k x m, so its transpose equals `plain`
            let mut t = vec![C64::ZERO; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = plain[i * k + p];
                }
            }
            t
        };
        let mut packed_none = Vec::new();
        let mut packed_t = Vec::new();
        let mut packed_h = Vec::new();
        pack_a(Op::None, &plain, k, 0, m, 0, k, &mut packed_none);
        pack_a(Op::Transpose, &stored_t, m, 0, m, 0, k, &mut packed_t);
        let conj_t: Vec<C64> = stored_t.iter().map(|z| z.conj()).collect();
        pack_a(Op::Adjoint, &conj_t, m, 0, m, 0, k, &mut packed_h);
        assert_eq!(packed_none, packed_t);
        assert_eq!(packed_none, packed_h);
        // Padded rows of the ragged final strip are zero.
        let last = strips(m, MR) - 1;
        let strip = &packed_none[last * k * 2 * MR..];
        for p in 0..k {
            for r in (m - last * MR)..MR {
                assert_eq!(strip[p * 2 * MR + r], 0.0);
                assert_eq!(strip[p * 2 * MR + MR + r], 0.0);
            }
        }
    }

    #[test]
    fn pack_b_layout_roundtrip() {
        let (k, n) = (4, 10); // one full strip + one ragged strip
        let b = sample(k, n);
        let mut packed = Vec::new();
        pack_b(Op::None, &b, n, 0, k, 0, n, &mut packed);
        assert_eq!(packed.len(), strips(n, NR) * k * 2 * NR);
        for p in 0..k {
            for j in 0..n {
                let s = j / NR;
                let c = j % NR;
                let group = &packed[s * k * 2 * NR + p * 2 * NR..];
                assert_eq!(group[c], b[p * n + j].re);
                assert_eq!(group[NR + c], b[p * n + j].im);
            }
        }
    }
}
