//! Linear solvers: LU with partial pivoting, triangular solves and inverses.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::scalar::C64;

/// LU factorization with partial pivoting: `P A = L U`, stored packed.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (unit lower triangle implicit).
    lu: Matrix,
    /// Row permutation: row `i` of `U`/`L` corresponds to row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Factorize a square matrix.
///
/// Inputs carrying the structural [`Matrix::is_real`] hint are eliminated in
/// a real-only inner loop (`f64` pivoting and rank-1 updates — no imaginary
/// lane touched) and the packed factors keep the hint, so [`Lu::solve`] on a
/// real right-hand side also runs real-only.
pub fn lu(a: &Matrix) -> Result<Lu> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { nrows: m, ncols: n });
    }
    if a.is_real() {
        return lu_real(a);
    }
    let mut lu_m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Pivot: largest modulus in column k at or below the diagonal.
        let mut piv = k;
        let mut best = lu_m[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu_m[(i, k)].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best == 0.0 {
            return Err(LinalgError::Singular);
        }
        if piv != k {
            for j in 0..n {
                let tmp = lu_m[(k, j)];
                lu_m[(k, j)] = lu_m[(piv, j)];
                lu_m[(piv, j)] = tmp;
            }
            perm.swap(k, piv);
            sign = -sign;
        }
        let pivot = lu_m[(k, k)];
        for i in (k + 1)..n {
            let factor = lu_m[(i, k)] / pivot;
            lu_m[(i, k)] = factor;
            for j in (k + 1)..n {
                let sub = factor * lu_m[(k, j)];
                lu_m[(i, j)] -= sub;
            }
        }
    }
    Ok(Lu { lu: lu_m, perm, sign })
}

/// Real-only partial-pivoting elimination behind [`lu`] for hinted-real
/// inputs: the same algorithm on the real parts alone. The property test
/// `real_path_factorizations_match_complex_path_across_shape_classes` pins
/// the two branches' agreement at 1e-12 — any tolerance, pivoting, or
/// convergence change here must land in the complex branch too (and vice
/// versa).
fn lu_real(a: &Matrix) -> Result<Lu> {
    let n = a.nrows();
    let mut d: Vec<f64> = a.data().iter().map(|z| z.re).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        let mut piv = k;
        let mut best = d[k * n + k].abs();
        for i in (k + 1)..n {
            let v = d[i * n + k].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best == 0.0 {
            return Err(LinalgError::Singular);
        }
        if piv != k {
            for j in 0..n {
                d.swap(k * n + j, piv * n + j);
            }
            perm.swap(k, piv);
            sign = -sign;
        }
        let pivot = d[k * n + k];
        for i in (k + 1)..n {
            let factor = d[i * n + k] / pivot;
            d[i * n + k] = factor;
            for j in (k + 1)..n {
                d[i * n + j] -= factor * d[k * n + j];
            }
        }
    }
    let lu_m = Matrix::from_real(n, n, &d)?;
    Ok(Lu { lu: lu_m, perm, sign })
}

impl Lu {
    /// Solve `A x = b` for each column of `b`.
    ///
    /// The substitution sweeps run on contiguous row slices (axpy-style rank-1
    /// updates on the row-major storage) rather than per-element indexing, so
    /// multi-RHS solves stream through memory like the GEMM kernels do.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.nrows();
        if b.nrows() != n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("lu solve: rhs has {} rows, expected {}", b.nrows(), n),
            });
        }
        if self.lu.is_real() && b.is_real() {
            return Ok(self.solve_real(b));
        }
        let ncols = b.ncols();
        let mut x = Matrix::zeros(n, ncols);
        // Apply permutation to b: whole-row copies.
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        let xd = x.data_mut();
        // Forward substitution with the unit lower triangle:
        // row_i -= L[i, k] * row_k for k < i.
        for i in 0..n {
            let (above, current) = xd.split_at_mut(i * ncols);
            let row_i = &mut current[..ncols];
            for k in 0..i {
                let lik = self.lu[(i, k)];
                if lik == C64::ZERO {
                    continue;
                }
                let row_k = &above[k * ncols..(k + 1) * ncols];
                for (xi, xk) in row_i.iter_mut().zip(row_k.iter()) {
                    *xi -= lik * *xk;
                }
            }
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let (upto, below) = xd.split_at_mut((i + 1) * ncols);
            let row_i = &mut upto[i * ncols..];
            for k in (i + 1)..n {
                let uik = self.lu[(i, k)];
                if uik == C64::ZERO {
                    continue;
                }
                let row_k = &below[(k - i - 1) * ncols..(k - i) * ncols];
                for (xi, xk) in row_i.iter_mut().zip(row_k.iter()) {
                    *xi -= uik * *xk;
                }
            }
            let d = self.lu[(i, i)];
            for xi in row_i.iter_mut() {
                *xi /= d;
            }
        }
        Ok(x)
    }

    /// Real-only substitution sweeps for hinted-real factors and right-hand
    /// sides: the same row-slice algorithm on the real parts alone. The
    /// result is exactly real by construction and carries the hint.
    fn solve_real(&self, b: &Matrix) -> Matrix {
        let n = self.lu.nrows();
        let ncols = b.ncols();
        let lu_d: Vec<f64> = self.lu.data().iter().map(|z| z.re).collect();
        let mut x = vec![0.0f64; n * ncols];
        for i in 0..n {
            let src = b.row(self.perm[i]);
            for (j, z) in src.iter().enumerate() {
                x[i * ncols + j] = z.re;
            }
        }
        // Forward substitution with the unit lower triangle.
        for i in 0..n {
            let (above, current) = x.split_at_mut(i * ncols);
            let row_i = &mut current[..ncols];
            for k in 0..i {
                let lik = lu_d[i * n + k];
                if lik == 0.0 {
                    continue;
                }
                let row_k = &above[k * ncols..(k + 1) * ncols];
                for (xi, xk) in row_i.iter_mut().zip(row_k.iter()) {
                    *xi -= lik * *xk;
                }
            }
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let (upto, below) = x.split_at_mut((i + 1) * ncols);
            let row_i = &mut upto[i * ncols..];
            for k in (i + 1)..n {
                let uik = lu_d[i * n + k];
                if uik == 0.0 {
                    continue;
                }
                let row_k = &below[(k - i - 1) * ncols..(k - i) * ncols];
                for (xi, xk) in row_i.iter_mut().zip(row_k.iter()) {
                    *xi -= uik * *xk;
                }
            }
            let d = lu_d[i * n + i];
            for xi in row_i.iter_mut() {
                *xi /= d;
            }
        }
        Matrix::from_real(n, ncols, &x)
            .unwrap_or_else(|_| unreachable!("solve_real: buffer is sized n*ncols by construction"))
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> C64 {
        let n = self.lu.nrows();
        let mut d = C64::from_real(self.sign);
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Solve `A x = b`.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    lu(a)?.solve(b)
}

/// Matrix inverse.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    let n = a.nrows();
    lu(a)?.solve(&Matrix::identity(n))
}

/// Least-squares solution of `min_x ||A x - b||_F` for a full-column-rank
/// `A` (m >= n), via the normal equations `A^H A x = A^H b`.
///
/// Both Gram products run through the [`Op::Adjoint`](crate::gemm::Op) fused
/// GEMM path — no adjoint of `A` is materialised. Fine for the
/// well-conditioned tall systems produced by tensor-network algorithms; use
/// a QR-based solve if `A` may be ill-conditioned.
///
/// ```
/// use koala_linalg::{lstsq, matmul, Matrix};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let a = Matrix::random(20, 4, &mut rng);
/// let x_true = Matrix::random(4, 2, &mut rng);
/// let b = matmul(&a, &x_true); // consistent system: the residual is zero
/// let x = lstsq(&a, &b).unwrap();
/// assert!(x.approx_eq(&x_true, 1e-9));
/// ```
pub fn lstsq(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            context: format!("lstsq: system is underdetermined ({m} rows < {n} cols)"),
        });
    }
    if b.nrows() != m {
        return Err(LinalgError::DimensionMismatch {
            context: format!("lstsq: rhs has {} rows, expected {m}", b.nrows()),
        });
    }
    let gram = crate::gemm::matmul_adj_a(a, a);
    let rhs = crate::gemm::matmul_adj_a(a, b);
    solve(&gram, &rhs)
}

/// Solve `R x = b` with `R` upper triangular.
pub fn solve_upper_triangular(r: &Matrix, b: &Matrix) -> Result<Matrix> {
    let (n, n2) = r.shape();
    if n != n2 {
        return Err(LinalgError::NotSquare { nrows: n, ncols: n2 });
    }
    if b.nrows() != n {
        return Err(LinalgError::DimensionMismatch {
            context: format!("triangular solve: rhs has {} rows, expected {}", b.nrows(), n),
        });
    }
    let ncols = b.ncols();
    // Back-substitution over real data produces exactly real results (every
    // complex operation on zero-imaginary operands yields zero imaginary
    // parts), so the hint survives; IndexMut drops it conservatively.
    let keep_real = r.is_real() && b.is_real();
    let mut x = b.clone();
    for i in (0..n).rev() {
        let d = r[(i, i)];
        if d.abs() == 0.0 {
            return Err(LinalgError::Singular);
        }
        for j in 0..ncols {
            let mut acc = x[(i, j)];
            for k in (i + 1)..n {
                acc -= r[(i, k)] * x[(k, j)];
            }
            x[(i, j)] = acc / d;
        }
    }
    if keep_real {
        x.assume_real();
    }
    Ok(x)
}

/// Inverse of an upper-triangular matrix.
pub fn upper_triangular_inverse(r: &Matrix) -> Result<Matrix> {
    let n = r.nrows();
    solve_upper_triangular(r, &Matrix::identity(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::scalar::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solve_roundtrip() {
        let mut rng = StdRng::seed_from_u64(50);
        let a = Matrix::random(8, 8, &mut rng);
        let x_true = Matrix::random(8, 3, &mut rng);
        let b = matmul(&a, &x_true);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(51);
        let a = Matrix::random(6, 6, &mut rng);
        let ainv = inverse(&a).unwrap();
        assert!(matmul(&a, &ainv).approx_eq(&Matrix::identity(6), 1e-9));
        assert!(matmul(&ainv, &a).approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::from_diag(&[c64(2.0, 0.0), c64(0.0, 3.0), c64(-1.0, 0.0)]);
        let d = lu(&a).unwrap().det();
        // det = 2 * 3i * (-1) = -6i
        assert!(d.approx_eq(c64(0.0, -6.0), 1e-12));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = c64(1.0, 0.0);
        a[(1, 1)] = c64(1.0, 0.0);
        assert!(matches!(lu(&a), Err(LinalgError::Singular)));
        assert!(matches!(lu(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let b = Matrix::from_real(2, 1, &[2.0, 3.0]).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x[(0, 0)].approx_eq(c64(3.0, 0.0), 1e-12));
        assert!(x[(1, 0)].approx_eq(c64(2.0, 0.0), 1e-12));
    }

    #[test]
    fn triangular_solve_and_inverse() {
        let mut rng = StdRng::seed_from_u64(52);
        let a = Matrix::random(7, 7, &mut rng);
        let r = crate::qr::qr(&a).r;
        let rinv = upper_triangular_inverse(&r).unwrap();
        assert!(matmul(&r, &rinv).approx_eq(&Matrix::identity(7), 1e-9));
        let b = Matrix::random(7, 2, &mut rng);
        let x = solve_upper_triangular(&r, &b).unwrap();
        assert!(matmul(&r, &x).approx_eq(&b, 1e-9));
        // Mismatched rhs is rejected.
        assert!(solve_upper_triangular(&r, &Matrix::zeros(3, 1)).is_err());
    }
}
