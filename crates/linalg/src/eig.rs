//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! The Gram-matrix orthogonalization of the paper's Algorithm 5 and the
//! exponentials of local Hamiltonian terms both reduce to Hermitian
//! eigendecompositions of small matrices, for which Jacobi iteration is
//! simple, accurate, and fast enough.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::scalar::{c64, C64};

/// Eigendecomposition `A = V diag(lambda) V^H` of a Hermitian matrix, with
/// real eigenvalues sorted in ascending order and orthonormal eigenvectors in
/// the columns of `V`.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors (column `j` corresponds to `values[j]`).
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 60;

/// Compute the eigendecomposition of a Hermitian matrix.
///
/// The matrix is symmetrised as `(A + A^H)/2` before iterating so that tiny
/// non-Hermitian round-off coming from upstream contractions is tolerated; a
/// grossly non-Hermitian input is rejected.
pub fn eigh(a: &Matrix) -> Result<EigH> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { nrows: m, ncols: n });
    }
    let scale = a.norm_max().max(1.0);
    if !a.is_hermitian(1e-8 * scale) {
        return Err(LinalgError::InvalidArgument {
            context: "eigh: matrix is not Hermitian".to_string(),
        });
    }
    if n == 0 {
        return Ok(EigH { values: vec![], vectors: Matrix::zeros(0, 0) });
    }
    if a.is_real() {
        return eigh_real(a);
    }

    // Work on the Hermitian average to kill round-off asymmetry.
    let mut h = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
        }
    }
    let mut v = Matrix::identity(n);

    let off = |h: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += h[(i, j)].norm_sqr();
                }
            }
        }
        s.sqrt()
    };

    let tol = 1e-14 * h.norm_fro().max(1e-300);
    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        if off(&h) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = h[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = h[(p, p)].re;
                let aqq = h[(q, q)].re;
                // Phase that makes the off-diagonal entry real and positive.
                let phi = apq.arg();
                let g = apq.abs();
                // Real Jacobi rotation for [[app, g], [g, aqq]].
                let zeta = (aqq - app) / (2.0 * g);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Unitary 2x2: J = diag(1, e^{-i phi}) * [[c, s], [-s, c]]
                // i.e. columns (p', q') = (c*e_p - s*e^{-i phi} e_q, s*e_p + c*e^{-i phi} e_q).
                let e_m = C64::cis(-phi);
                let jpp = c64(c, 0.0);
                let jpq = c64(s, 0.0);
                let jqp = -e_m.scale(s);
                let jqq = e_m.scale(c);

                // A <- J^H A J : update columns then rows.
                for i in 0..n {
                    let aip = h[(i, p)];
                    let aiq = h[(i, q)];
                    h[(i, p)] = aip * jpp + aiq * jqp;
                    h[(i, q)] = aip * jpq + aiq * jqq;
                }
                for j in 0..n {
                    let apj = h[(p, j)];
                    let aqj = h[(q, j)];
                    h[(p, j)] = jpp.conj() * apj + jqp.conj() * aqj;
                    h[(q, j)] = jpq.conj() * apj + jqq.conj() * aqj;
                }
                // V <- V J
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip * jpp + viq * jqp;
                    v[(i, q)] = vip * jpq + viq * jqq;
                }
            }
        }
    }
    if !converged && off(&h) > 1e-8 * h.norm_fro().max(1e-300) {
        return Err(LinalgError::NoConvergence {
            algorithm: "jacobi-eigh",
            iterations: MAX_SWEEPS,
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| h[(i, i)].re).collect();
    order.sort_by(|&i, &j| {
        values_raw[i].partial_cmp(&values_raw[j]).unwrap_or(std::cmp::Ordering::Equal)
    });

    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (newcol, &oldcol) in order.iter().enumerate() {
        vectors.set_col(newcol, &v.col(oldcol));
    }
    Ok(EigH { values, vectors })
}

/// Real-only cyclic Jacobi for inputs carrying the structural realness hint
/// (a real Hermitian matrix is symmetric). The rotation phase of the complex
/// branch degenerates to the sign of the off-diagonal entry, so every
/// rotation is a plain real Givens rotation; the eigenvectors come back
/// exactly real with the hint set, which keeps downstream GEMMs (Gram-based
/// QR/SVD, matrix functions of real operators) on the real kernel.
/// The property test
/// `real_path_factorizations_match_complex_path_across_shape_classes` pins
/// the two branches' agreement at 1e-12 — any tolerance, pivoting, or
/// convergence change here must land in the complex branch too (and vice
/// versa).
fn eigh_real(a: &Matrix) -> Result<EigH> {
    let n = a.nrows();
    // Symmetric average of the real parts kills round-off asymmetry exactly
    // as the complex branch does.
    let mut h = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            h[i * n + j] = 0.5 * (a[(i, j)].re + a[(j, i)].re);
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off = |h: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += h[i * n + j] * h[i * n + j];
                }
            }
        }
        s.sqrt()
    };
    let fro = h.iter().map(|x| x * x).sum::<f64>().sqrt();

    let tol = 1e-14 * fro.max(1e-300);
    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        if off(&h) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = h[p * n + q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = h[p * n + p];
                let aqq = h[q * n + q];
                let sign = if apq >= 0.0 { 1.0 } else { -1.0 };
                let g = apq.abs();
                let zeta = (aqq - app) / (2.0 * g);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // J = diag(1, sign) * [[c, s], [-s, c]] — real orthogonal.
                let jpp = c;
                let jpq = s;
                let jqp = -sign * s;
                let jqq = sign * c;

                // A <- J^T A J : update columns then rows.
                for i in 0..n {
                    let aip = h[i * n + p];
                    let aiq = h[i * n + q];
                    h[i * n + p] = aip * jpp + aiq * jqp;
                    h[i * n + q] = aip * jpq + aiq * jqq;
                }
                for j in 0..n {
                    let apj = h[p * n + j];
                    let aqj = h[q * n + j];
                    h[p * n + j] = jpp * apj + jqp * aqj;
                    h[q * n + j] = jpq * apj + jqq * aqj;
                }
                // V <- V J
                for i in 0..n {
                    let vip = v[i * n + p];
                    let viq = v[i * n + q];
                    v[i * n + p] = vip * jpp + viq * jqp;
                    v[i * n + q] = vip * jpq + viq * jqq;
                }
            }
        }
    }
    if !converged && off(&h) > 1e-8 * fro.max(1e-300) {
        return Err(LinalgError::NoConvergence {
            algorithm: "jacobi-eigh",
            iterations: MAX_SWEEPS,
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| h[i * n + i]).collect();
    order.sort_by(|&i, &j| {
        values_raw[i].partial_cmp(&values_raw[j]).unwrap_or(std::cmp::Ordering::Equal)
    });

    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let mut vectors = vec![0.0f64; n * n];
    for (newcol, &oldcol) in order.iter().enumerate() {
        for r in 0..n {
            vectors[r * n + newcol] = v[r * n + oldcol];
        }
    }
    let vectors = Matrix::from_real(n, n, &vectors)?;
    Ok(EigH { values, vectors })
}

/// Eigenvalues only (ascending).
pub fn eigvalsh(a: &Matrix) -> Result<Vec<f64>> {
    Ok(eigh(a)?.values)
}

/// Apply a real function to a Hermitian matrix through its eigendecomposition:
/// `f(A) = V diag(f(lambda)) V^H`.
pub fn funm_hermitian(a: &Matrix, f: impl Fn(f64) -> C64) -> Result<Matrix> {
    let EigH { values, vectors } = eigh(a)?;
    let n = values.len();
    let mut fd = Matrix::zeros(n, n);
    let mut diag_real = true;
    for (i, &lam) in values.iter().enumerate() {
        let fi = f(lam);
        fd[(i, i)] = fi;
        diag_real &= fi.im == 0.0;
    }
    if diag_real {
        // Zeros stayed zero and every written diagonal entry is real;
        // IndexMut dropped the hint conservatively. With real eigenvectors
        // (real input), f(A) then assembles entirely on the real kernel.
        fd.assume_real();
    }
    let vf = crate::gemm::matmul(&vectors, &fd);
    Ok(crate::gemm::matmul_adj_b(&vf, &vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_adj_b};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_eigh(a: &Matrix, tol: f64) -> EigH {
        let e = eigh(a).expect("eigh failed");
        let n = a.nrows();
        assert!(e.vectors.has_orthonormal_cols(tol), "eigenvectors not orthonormal");
        // A V = V diag(lambda)
        let av = matmul(a, &e.vectors);
        let vd = matmul(&e.vectors, &Matrix::from_diag_real(&e.values));
        assert!(av.approx_eq(&vd, tol * a.norm_max().max(1.0) * n as f64), "A V != V D");
        // ascending order
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        e
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag_real(&[3.0, -1.0, 2.0]);
        let e = check_eigh(&a, 1e-12);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        // Y = [[0, -i], [i, 0]] has eigenvalues -1, +1.
        let a = Matrix::from_vec(2, 2, vec![C64::ZERO, c64(0.0, -1.0), c64(0.0, 1.0), C64::ZERO])
            .unwrap();
        let e = check_eigh(&a, 1e-12);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_hermitian_various_sizes() {
        let mut rng = StdRng::seed_from_u64(30);
        for &n in &[1usize, 2, 3, 5, 8, 16, 33] {
            let a = Matrix::random_hermitian(n, &mut rng);
            check_eigh(&a, 1e-9);
        }
    }

    #[test]
    fn eigenvalue_sum_is_trace() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = Matrix::random_hermitian(10, &mut rng);
        let e = eigh(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace().re).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square_and_non_hermitian() {
        assert!(matches!(eigh(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = c64(5.0, 0.0);
        assert!(eigh(&a).is_err());
    }

    #[test]
    fn funm_exponential_of_zero_is_identity() {
        let a = Matrix::zeros(4, 4);
        let e = funm_hermitian(&a, |x| c64(x.exp(), 0.0)).unwrap();
        assert!(e.approx_eq(&Matrix::identity(4), 1e-13));
    }

    #[test]
    fn funm_square_matches_matrix_square() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = Matrix::random_hermitian(6, &mut rng);
        let sq = funm_hermitian(&a, |x| c64(x * x, 0.0)).unwrap();
        assert!(sq.approx_eq(&matmul(&a, &a), 1e-9));
    }

    #[test]
    fn reconstruction_from_factors() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = Matrix::random_hermitian(7, &mut rng);
        let EigH { values, vectors } = eigh(&a).unwrap();
        let rec = matmul_adj_b(&matmul(&vectors, &Matrix::from_diag_real(&values)), &vectors);
        assert!(rec.approx_eq(&a, 1e-10));
    }
}
