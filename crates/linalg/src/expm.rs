//! Matrix exponentials.
//!
//! Two flavours are needed by the simulation layer:
//! * `exp(factor * H)` for Hermitian `H` (imaginary-time evolution uses a real
//!   negative `factor`, real-time evolution / gate synthesis uses a purely
//!   imaginary one) — computed through the eigendecomposition.
//! * a general dense `expm` via scaling-and-squaring with a Taylor/Padé-style
//!   series, used as an independent cross-check in tests.

use crate::eig::funm_hermitian;
use crate::error::Result;
use crate::gemm::matmul;
use crate::matrix::Matrix;
use crate::scalar::C64;

/// `exp(factor * H)` for Hermitian `H`.
///
/// When `H` carries the structural realness hint and `factor` is real, the
/// result `U exp(factor * Lambda) U^H` is real *mathematically* (a real
/// Hermitian matrix is symmetric, its spectrum is real, and a real function
/// of it is real); the O(eps) imaginary rounding noise left behind by the
/// complex eigendecomposition's rotation phases is projected away and the
/// output is marked real. This is what makes Trotter gates of real
/// Hamiltonians (TFI imaginary-time evolution) enter the tensor network with
/// the realness hint intact; an imaginary `factor` (real-time evolution,
/// `RZ`-style gates) leaves the result unhinted as it is genuinely complex.
///
/// With the real-only Jacobi path in [`crate::eig::eigh`] the result of a
/// hinted-real `H` with a real factor is exactly real and arrives already
/// hinted, so the projection below is normally dead. It is kept as a guarded
/// backstop should a future `funm_hermitian` change stop propagating the
/// hint: [`Matrix::project_real_if_negligible`] scales its tolerance with
/// `max_abs * n * EPSILON` instead of using a hardcoded eps, so it neither
/// loses the hint on large matrices nor falsely projects genuinely complex
/// results. (An *unhinted* real `H` is deliberately not projected — nothing
/// guarantees its exponential is mathematically real.)
pub fn expm_hermitian(h: &Matrix, factor: C64) -> Result<Matrix> {
    let mut out = funm_hermitian(h, |lam| (factor.scale(lam)).exp())?;
    if h.is_real() && factor.im == 0.0 && !out.is_real() {
        out.project_real_if_negligible();
    }
    Ok(out)
}

/// General matrix exponential by scaling and squaring with a truncated Taylor
/// series. Intended for small matrices (gates are 2x2 or 4x4); accuracy is at
/// machine-precision level for the norms encountered there.
pub fn expm(a: &Matrix) -> Result<Matrix> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "expm: matrix must be square");
    let norm = a.norm_max();
    // Scale so the series converges quickly.
    let s = if norm > 0.5 { (norm / 0.5).log2().ceil() as u32 } else { 0 };
    let scale = 1.0 / f64::powi(2.0, s as i32);
    let a_scaled = a.scale(C64::from_real(scale));

    // Taylor series sum_{k=0}^{K} A^k / k!
    let mut term = Matrix::identity(n);
    let mut sum = Matrix::identity(n);
    for k in 1..=24 {
        term = matmul(&term, &a_scaled).scale(C64::from_real(1.0 / k as f64));
        sum += &term;
        if term.norm_max() < 1e-18 {
            break;
        }
    }
    // Undo the scaling by repeated squaring.
    let mut result = sum;
    for _ in 0..s {
        result = matmul(&result, &result);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_of_zero() {
        assert!(expm(&Matrix::zeros(3, 3)).unwrap().approx_eq(&Matrix::identity(3), 1e-14));
        assert!(expm_hermitian(&Matrix::zeros(3, 3), c64(1.0, 0.0))
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-14));
    }

    #[test]
    fn hermitian_and_general_agree() {
        let mut rng = StdRng::seed_from_u64(60);
        let h = Matrix::random_hermitian(5, &mut rng);
        let factor = c64(-0.3, 0.0);
        let e1 = expm_hermitian(&h, factor).unwrap();
        let e2 = expm(&h.scale(factor)).unwrap();
        assert!(e1.approx_eq(&e2, 1e-10));
    }

    #[test]
    fn imaginary_factor_gives_unitary() {
        let mut rng = StdRng::seed_from_u64(61);
        let h = Matrix::random_hermitian(4, &mut rng);
        let u = expm_hermitian(&h, c64(0.0, -1.0)).unwrap();
        assert!(u.has_orthonormal_cols(1e-10), "exp(-iH) should be unitary");
    }

    #[test]
    fn pauli_rotation_matches_closed_form() {
        // exp(-i theta/2 * Y) = [[cos(t/2), -sin(t/2)], [sin(t/2), cos(t/2)]]
        let y = Matrix::from_vec(2, 2, vec![C64::ZERO, c64(0.0, -1.0), c64(0.0, 1.0), C64::ZERO])
            .unwrap();
        let theta = 0.9f64;
        let u = expm_hermitian(&y, c64(0.0, -theta / 2.0)).unwrap();
        let expected = Matrix::from_real(
            2,
            2,
            &[(theta / 2.0).cos(), -(theta / 2.0).sin(), (theta / 2.0).sin(), (theta / 2.0).cos()],
        )
        .unwrap();
        assert!(u.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn additivity_for_commuting_matrices() {
        let a = Matrix::from_diag_real(&[0.3, -0.7, 1.1]);
        let b = Matrix::from_diag_real(&[-0.2, 0.4, 0.9]);
        let lhs = expm(&(&a + &b)).unwrap();
        let rhs = matmul(&expm(&a).unwrap(), &expm(&b).unwrap());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn large_norm_uses_squaring_correctly() {
        let mut rng = StdRng::seed_from_u64(62);
        let h = Matrix::random_hermitian(4, &mut rng).scale(c64(6.0, 0.0));
        let e1 = expm(&h).unwrap();
        let e2 = expm_hermitian(&h, C64::ONE).unwrap();
        assert!(e1.approx_eq(&e2, 1e-7 * e1.norm_max()));
    }
}
