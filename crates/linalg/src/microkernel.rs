//! Register-blocked GEMM microkernel over packed split-complex panels.
//!
//! The microkernel multiplies one `MR x kc` strip of packed A with one
//! `kc x NR` strip of packed B, accumulating into `MR x NR` split real /
//! imaginary register tiles. Operands arrive packed (see [`crate::pack`]) as
//! split-complex groups — for each depth index `p`, `MR` (or `NR`) real
//! parts followed by the matching imaginary parts — so the inner loops are
//! pure `f64` lane arithmetic that LLVM auto-vectorizes to `f64x4`/`f64x8`
//! FMA sequences when the target has them.

/// Rows of C computed per microkernel invocation.
pub const MR: usize = 6;
/// Columns of C computed per microkernel invocation. One AVX-512 register
/// holds exactly NR `f64` lanes, and AVX2 uses two. The `6 x 8` tile was the
/// fastest of the `{2,4,6,8} x {8,16}` sweep on an AVX-512 Xeon.
pub const NR: usize = 8;

/// Split-complex accumulator tile: `re[i][j]` / `im[i][j]` for `C[i][j]`.
#[derive(Clone, Copy)]
pub struct AccTile {
    /// Real parts of the `MR x NR` tile.
    pub re: [[f64; NR]; MR],
    /// Imaginary parts of the `MR x NR` tile.
    pub im: [[f64; NR]; MR],
}

/// Fused multiply-add that only uses the hardware `fma` instruction when the
/// target actually has it; the plain form otherwise (a libm `fma()` call
/// would be ~20x slower than mul+add).
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// Multiply a packed `MR x kc` A-strip by a packed `kc x NR` B-strip.
///
/// `ap` holds `kc` groups of `2 * MR` floats (MR real parts, then MR
/// imaginary parts); `bp` holds `kc` groups of `2 * NR` floats. Returns the
/// accumulated tile; the caller adds it into C (masked at edges).
#[inline(always)]
pub fn microkernel(kc: usize, ap: &[f64], bp: &[f64]) -> AccTile {
    debug_assert!(ap.len() >= 2 * MR * kc);
    debug_assert!(bp.len() >= 2 * NR * kc);
    let mut acc = AccTile { re: [[0.0; NR]; MR], im: [[0.0; NR]; MR] };
    for (ak, bk) in ap.chunks_exact(2 * MR).zip(bp.chunks_exact(2 * NR)).take(kc) {
        let (a_re, a_im) = ak.split_at(MR);
        let (b_re, b_im) = bk.split_at(NR);
        for i in 0..MR {
            let ar = a_re[i];
            let ai = a_im[i];
            let cre = &mut acc.re[i];
            let cim = &mut acc.im[i];
            for j in 0..NR {
                // (ar + i*ai) * (br + i*bi): four FMAs per lane.
                cre[j] = fmadd(ar, b_re[j], cre[j]);
                cre[j] = fmadd(-ai, b_im[j], cre[j]);
                cim[j] = fmadd(ar, b_im[j], cim[j]);
                cim[j] = fmadd(ai, b_re[j], cim[j]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_scalar_reference() {
        let kc = 5;
        // Synthetic packed panels with recognisable values.
        let mut ap = vec![0.0f64; 2 * MR * kc];
        let mut bp = vec![0.0f64; 2 * NR * kc];
        for p in 0..kc {
            for i in 0..MR {
                ap[p * 2 * MR + i] = (p * MR + i) as f64 * 0.25; // re
                ap[p * 2 * MR + MR + i] = 1.0 - i as f64 * 0.5; // im
            }
            for j in 0..NR {
                bp[p * 2 * NR + j] = 0.5 + (p + j) as f64 * 0.125;
                bp[p * 2 * NR + NR + j] = (j as f64) - 2.0;
            }
        }
        let acc = microkernel(kc, &ap, &bp);
        for i in 0..MR {
            for j in 0..NR {
                let mut re = 0.0;
                let mut im = 0.0;
                for p in 0..kc {
                    let ar = ap[p * 2 * MR + i];
                    let ai = ap[p * 2 * MR + MR + i];
                    let br = bp[p * 2 * NR + j];
                    let bi = bp[p * 2 * NR + NR + j];
                    re += ar * br - ai * bi;
                    im += ar * bi + ai * br;
                }
                assert!((acc.re[i][j] - re).abs() < 1e-12);
                assert!((acc.im[i][j] - im).abs() < 1e-12);
            }
        }
    }
}
