//! Register-blocked GEMM microkernels over packed panels.
//!
//! Each microkernel multiplies one packed A strip with one packed B strip.
//! Three variants exist:
//!
//! * [`microkernel`] — the split-complex `MR x NR` kernel. Operands arrive
//!   packed (see [`crate::pack`]) as split-complex groups — for each depth
//!   index `p`, `MR` (or `NR`) real parts followed by the matching imaginary
//!   parts — and the kernel runs four FMAs per output lane per depth step.
//! * [`microkernel_real_wide`] — the `MR_REAL x NR_REAL = 8 x 16` real-only
//!   kernel consuming the dense `f64` panels of `pack_a_real`/`pack_b_real`:
//!   one FMA per output lane per depth step on a register tile sized for the
//!   real case (the `6 x 8` complex tile is dictated by split re/im register
//!   pressure the real kernel does not have).
//! * [`microkernel_real`] — the strided `MR x NR` real-only kernel used when
//!   realness is only *detected* during split-complex packing: it reads just
//!   the real lanes of the already-packed split-complex panels through a
//!   caller-supplied group stride (`2 * MR`/`2 * NR`), so the detected case
//!   costs no repacking.
//!
//! In both cases the inner loops are pure `f64` lane arithmetic that LLVM
//! auto-vectorizes to `f64x4`/`f64x8` FMA sequences when the target has them.

/// Rows of C computed per microkernel invocation.
pub const MR: usize = 6;
/// Columns of C computed per microkernel invocation. One AVX-512 register
/// holds exactly NR `f64` lanes, and AVX2 uses two. The `6 x 8` tile was the
/// fastest of the `{2,4,6,8} x {8,16}` sweep on an AVX-512 Xeon.
pub const NR: usize = 8;

/// Split-complex accumulator tile: `re[i][j]` / `im[i][j]` for `C[i][j]`.
#[derive(Clone, Copy)]
pub struct AccTile {
    /// Real parts of the `MR x NR` tile.
    pub re: [[f64; NR]; MR],
    /// Imaginary parts of the `MR x NR` tile.
    pub im: [[f64; NR]; MR],
}

/// Fused multiply-add that only uses the hardware `fma` instruction when the
/// target actually has it; the plain form otherwise (a libm `fma()` call
/// would be ~20x slower than mul+add).
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// Multiply a packed `MR x kc` A-strip by a packed `kc x NR` B-strip.
///
/// `ap` holds `kc` groups of `2 * MR` floats (MR real parts, then MR
/// imaginary parts); `bp` holds `kc` groups of `2 * NR` floats. Returns the
/// accumulated tile; the caller adds it into C (masked at edges).
#[inline(always)]
pub fn microkernel(kc: usize, ap: &[f64], bp: &[f64]) -> AccTile {
    debug_assert!(ap.len() >= 2 * MR * kc);
    debug_assert!(bp.len() >= 2 * NR * kc);
    let mut acc = AccTile { re: [[0.0; NR]; MR], im: [[0.0; NR]; MR] };
    for (ak, bk) in ap.chunks_exact(2 * MR).zip(bp.chunks_exact(2 * NR)).take(kc) {
        let (a_re, a_im) = ak.split_at(MR);
        let (b_re, b_im) = bk.split_at(NR);
        for i in 0..MR {
            let ar = a_re[i];
            let ai = a_im[i];
            let cre = &mut acc.re[i];
            let cim = &mut acc.im[i];
            for j in 0..NR {
                // (ar + i*ai) * (br + i*bi): four FMAs per lane.
                cre[j] = fmadd(ar, b_re[j], cre[j]);
                cre[j] = fmadd(-ai, b_im[j], cre[j]);
                cim[j] = fmadd(ar, b_im[j], cim[j]);
                cim[j] = fmadd(ai, b_re[j], cim[j]);
            }
        }
    }
    acc
}

/// Rows of C computed per invocation of the *wide* real-only microkernel.
/// The split-complex kernel needs 12 accumulator registers for a `6 x 8`
/// tile (split re/im); the real kernel holds one accumulator per lane, so it
/// can afford a wider `8 x 16` tile (16 AVX-512 accumulator registers) that
/// amortises the A-broadcasts over twice the output columns.
pub const MR_REAL: usize = 8;
/// Columns of C computed per wide real microkernel invocation (two AVX-512
/// registers of `f64` lanes).
pub const NR_REAL: usize = 16;

/// Real-only accumulator tile: `re[i][j]` for `C[i][j]` (imaginary parts of
/// the update are identically zero).
pub type RealAccTile = [[f64; NR]; MR];

/// Accumulator tile of the wide `8 x 16` real microkernel.
pub type RealAccTileWide = [[f64; NR_REAL]; MR_REAL];

/// Multiply a packed real-only `MR_REAL x kc` A-strip by a packed real-only
/// `kc x NR_REAL` B-strip (the dense `f64` panels produced by
/// [`crate::pack::pack_a_real`] / [`crate::pack::pack_b_real`]).
///
/// This is the kernel behind the caller-asserted real path: one FMA per
/// output lane per depth step on a register tile sized for the real case
/// (see [`MR_REAL`]). The strided [`microkernel_real`] remains for depth
/// blocks whose realness is only *detected* after split-complex packing,
/// where the panel geometry is fixed at `MR x NR`.
#[inline(always)]
pub fn microkernel_real_wide(kc: usize, ap: &[f64], bp: &[f64]) -> RealAccTileWide {
    debug_assert!(ap.len() >= MR_REAL * kc);
    debug_assert!(bp.len() >= NR_REAL * kc);
    let mut acc: RealAccTileWide = [[0.0; NR_REAL]; MR_REAL];
    for (ak, bk) in ap.chunks_exact(MR_REAL).zip(bp.chunks_exact(NR_REAL)).take(kc) {
        for i in 0..MR_REAL {
            let ar = ak[i];
            let row = &mut acc[i];
            for j in 0..NR_REAL {
                row[j] = fmadd(ar, bk[j], row[j]);
            }
        }
    }
    acc
}

/// Multiply the real lanes of a packed `MR x kc` A-strip by the real lanes of
/// a packed `kc x NR` B-strip.
///
/// `a_group` / `b_group` are the distances (in floats) between consecutive
/// depth groups of the panel: `MR` / `NR` for real-only panels, `2 * MR` /
/// `2 * NR` to address only the real halves of split-complex panels. The
/// first `MR` (resp. `NR`) floats of each group are the real lanes consumed.
#[inline(always)]
pub fn microkernel_real(
    kc: usize,
    ap: &[f64],
    a_group: usize,
    bp: &[f64],
    b_group: usize,
) -> RealAccTile {
    debug_assert!(a_group >= MR && b_group >= NR);
    debug_assert!(kc == 0 || ap.len() >= (kc - 1) * a_group + MR);
    debug_assert!(kc == 0 || bp.len() >= (kc - 1) * b_group + NR);
    let mut acc: RealAccTile = [[0.0; NR]; MR];
    for p in 0..kc {
        let ak = &ap[p * a_group..p * a_group + MR];
        let bk = &bp[p * b_group..p * b_group + NR];
        for i in 0..MR {
            let ar = ak[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] = fmadd(ar, bk[j], row[j]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_scalar_reference() {
        let kc = 5;
        // Synthetic packed panels with recognisable values.
        let mut ap = vec![0.0f64; 2 * MR * kc];
        let mut bp = vec![0.0f64; 2 * NR * kc];
        for p in 0..kc {
            for i in 0..MR {
                ap[p * 2 * MR + i] = (p * MR + i) as f64 * 0.25; // re
                ap[p * 2 * MR + MR + i] = 1.0 - i as f64 * 0.5; // im
            }
            for j in 0..NR {
                bp[p * 2 * NR + j] = 0.5 + (p + j) as f64 * 0.125;
                bp[p * 2 * NR + NR + j] = (j as f64) - 2.0;
            }
        }
        let acc = microkernel(kc, &ap, &bp);
        for i in 0..MR {
            for j in 0..NR {
                let mut re = 0.0;
                let mut im = 0.0;
                for p in 0..kc {
                    let ar = ap[p * 2 * MR + i];
                    let ai = ap[p * 2 * MR + MR + i];
                    let br = bp[p * 2 * NR + j];
                    let bi = bp[p * 2 * NR + NR + j];
                    re += ar * br - ai * bi;
                    im += ar * bi + ai * br;
                }
                assert!((acc.re[i][j] - re).abs() < 1e-12);
                assert!((acc.im[i][j] - im).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wide_real_kernel_matches_scalar_reference() {
        let kc = 7;
        let mut ap = vec![0.0f64; MR_REAL * kc];
        let mut bp = vec![0.0f64; NR_REAL * kc];
        for p in 0..kc {
            for i in 0..MR_REAL {
                ap[p * MR_REAL + i] = (p * MR_REAL + i) as f64 * 0.125 - 2.0;
            }
            for j in 0..NR_REAL {
                bp[p * NR_REAL + j] = 1.0 - (p + 3 * j) as f64 * 0.0625;
            }
        }
        let acc = microkernel_real_wide(kc, &ap, &bp);
        for i in 0..MR_REAL {
            for j in 0..NR_REAL {
                let mut want = 0.0;
                for p in 0..kc {
                    want += ap[p * MR_REAL + i] * bp[p * NR_REAL + j];
                }
                assert!((acc[i][j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn real_kernel_matches_complex_kernel_on_zero_imaginary_panels() {
        let kc = 6;
        // Split-complex panels with zero imaginary lanes.
        let mut ap = vec![0.0f64; 2 * MR * kc];
        let mut bp = vec![0.0f64; 2 * NR * kc];
        for p in 0..kc {
            for i in 0..MR {
                ap[p * 2 * MR + i] = (p + 2 * i) as f64 * 0.5 - 1.0;
            }
            for j in 0..NR {
                bp[p * 2 * NR + j] = 1.5 - (p * NR + j) as f64 * 0.25;
            }
        }
        let complex = microkernel(kc, &ap, &bp);
        // Strided read over the split-complex panels...
        let strided = microkernel_real(kc, &ap, 2 * MR, &bp, 2 * NR);
        // ...and dense real-only panels with the same values.
        let mut ap_real = vec![0.0f64; MR * kc];
        let mut bp_real = vec![0.0f64; NR * kc];
        for p in 0..kc {
            ap_real[p * MR..(p + 1) * MR].copy_from_slice(&ap[p * 2 * MR..p * 2 * MR + MR]);
            bp_real[p * NR..(p + 1) * NR].copy_from_slice(&bp[p * 2 * NR..p * 2 * NR + NR]);
        }
        let dense = microkernel_real(kc, &ap_real, MR, &bp_real, NR);
        for i in 0..MR {
            for j in 0..NR {
                assert_eq!(strided[i][j], complex.re[i][j]);
                assert_eq!(dense[i][j], complex.re[i][j]);
                assert_eq!(complex.im[i][j], 0.0);
            }
        }
    }
}
