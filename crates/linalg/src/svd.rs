//! Singular value decomposition of complex matrices.
//!
//! The workhorse is a one-sided complex Jacobi SVD, which is accurate to
//! machine precision (needed for the RQC contraction-error study of
//! Figure 10, where errors drop to ~1e-15) and needs no bidiagonalisation
//! machinery. A Gram-matrix based variant trades a little accuracy on the
//! smallest singular values for speed and is the building block the paper's
//! Algorithm 5 uses in the distributed setting.

use crate::eig::eigh;
use crate::error::{LinalgError, Result};
use crate::gemm::{matmul, matmul_adj_a};
use crate::matrix::Matrix;
use crate::scalar::C64;

/// Result of an SVD `A = U diag(s) V^H` with singular values in descending
/// order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, shape `(m, k)`.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Conjugate-transposed right singular vectors, shape `(k, n)`.
    pub vh: Matrix,
}

impl Svd {
    /// Number of retained singular values.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reassemble `U diag(s) V^H`.
    pub fn reconstruct(&self) -> Matrix {
        let us = scale_cols(&self.u, &self.s);
        matmul(&us, &self.vh)
    }

    /// Keep only the leading `k` singular triplets.
    pub fn truncated(&self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        Svd { u: self.u.truncate_cols(k), s: self.s[..k].to_vec(), vh: self.vh.truncate_rows(k) }
    }

    /// Frobenius norm of the discarded part if truncated to rank `k`
    /// (i.e. sqrt of the sum of squared trailing singular values).
    pub fn truncation_error(&self, k: usize) -> f64 {
        if k >= self.s.len() {
            return 0.0;
        }
        self.s[k..].iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Merge the singular values into the left factor: returns `(U diag(s), V^H)`.
    pub fn absorb_left(&self) -> (Matrix, Matrix) {
        (scale_cols(&self.u, &self.s), self.vh.clone())
    }

    /// Merge the singular values into the right factor: returns `(U, diag(s) V^H)`.
    pub fn absorb_right(&self) -> (Matrix, Matrix) {
        (self.u.clone(), scale_rows(&self.vh, &self.s))
    }

    /// Split the singular values evenly: returns `(U diag(sqrt s), diag(sqrt s) V^H)`.
    pub fn absorb_split(&self) -> (Matrix, Matrix) {
        let sq: Vec<f64> = self.s.iter().map(|x| x.sqrt()).collect();
        (scale_cols(&self.u, &sq), scale_rows(&self.vh, &sq))
    }
}

/// Multiply column `j` of `m` by `s[j]`. The realness hint survives for
/// finite scale factors (scaling a real entry by a finite real stays real).
pub fn scale_cols(m: &Matrix, s: &[f64]) -> Matrix {
    let mut out = m.clone();
    let ncols = m.ncols();
    assert!(s.len() >= ncols, "scale_cols: not enough scale factors");
    let keep_real = m.is_real() && s[..ncols].iter().all(|x| x.is_finite());
    for i in 0..m.nrows() {
        let row = out.row_mut(i);
        for (j, entry) in row.iter_mut().enumerate().take(ncols) {
            *entry = entry.scale(s[j]);
        }
    }
    if keep_real {
        out.assume_real();
    }
    out
}

/// Multiply row `i` of `m` by `s[i]` (hint rule as in [`scale_cols`]).
pub fn scale_rows(m: &Matrix, s: &[f64]) -> Matrix {
    let mut out = m.clone();
    let nrows = m.nrows();
    assert!(s.len() >= nrows, "scale_rows: not enough scale factors");
    let keep_real = m.is_real() && s[..nrows].iter().all(|x| x.is_finite());
    for i in 0..nrows {
        let si = s[i];
        for entry in out.row_mut(i) {
            *entry = entry.scale(si);
        }
    }
    if keep_real {
        out.assume_real();
    }
    out
}

/// Maximum number of one-sided Jacobi sweeps on the first attempt.
pub const MAX_SWEEPS: usize = 60;

/// Sweep budget after a [`LinalgError::NoConvergence`] escalation.
pub const ESCALATED_SWEEPS: usize = 240;

/// Full (thin) SVD via one-sided complex Jacobi iteration, hardened by a
/// numerical-recovery ladder.
///
/// Wide inputs (`m < n`) are handled by running the Jacobi iteration on the
/// columns of `A^H` — which are gathered directly as conjugated rows of the
/// row-major storage of `A` — and assembling the swapped factors in place.
/// No adjoint of the input (or of the resulting factors) is ever
/// materialised.
///
/// Inputs carrying the structural [`Matrix::is_real`] hint run a real-only
/// Jacobi iteration (plain Givens rotations, ~2x fewer flops than complex
/// rotations over real data) and `U` / `V^H` come back exactly real with the
/// hint set.
///
/// # Recovery ladder
///
/// Non-finite inputs are rejected up front ([`LinalgError::NonFinite`]) so
/// corruption is caught where it enters. If the Jacobi iteration fails to
/// converge in [`MAX_SWEEPS`] sweeps, the sweep budget is escalated to
/// [`ESCALATED_SWEEPS`]; if that still fails, the ladder falls back to the
/// Gram-matrix SVD ([`svd_gram`]), trading ~sqrt(eps) accuracy on the
/// smallest singular values for a guaranteed factorization. Every rung is
/// recorded on the [`koala_error::recovery`] counters and the final factors
/// pass a NaN/Inf guard before they are returned.
pub fn svd(a: &Matrix) -> Result<Svd> {
    svd_with_budgets(a, MAX_SWEEPS, ESCALATED_SWEEPS)
}

/// The recovery ladder of [`svd`] with explicit sweep budgets (separated out
/// so tests can force the escalation and fallback rungs).
fn svd_with_budgets(a: &Matrix, first_sweeps: usize, escalated_sweeps: usize) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd { u: Matrix::zeros(m, 0), s: vec![], vh: Matrix::zeros(0, n) });
    }
    a.validate_finite("svd input")?;
    let f = match svd_jacobi(a, first_sweeps) {
        Ok(f) => f,
        Err(LinalgError::NoConvergence { .. }) => {
            koala_error::recovery::note_svd_sweep_escalation();
            match svd_jacobi(a, escalated_sweeps) {
                Ok(f) => f,
                Err(LinalgError::NoConvergence { .. }) => {
                    koala_error::recovery::note_gram_svd_fallback();
                    svd_gram(a)?
                }
                Err(e) => return Err(e),
            }
        }
        Err(e) => return Err(e),
    };
    validate_svd_finite(&f, "svd output")?;
    Ok(f)
}

/// NaN/Inf guard over all three factors of an SVD.
fn validate_svd_finite(f: &Svd, context: &str) -> Result<()> {
    if !f.s.iter().all(|s| s.is_finite()) {
        koala_error::recovery::note_nonfinite_detection();
        return Err(LinalgError::NonFinite { context: format!("{context}: singular values") });
    }
    f.u.validate_finite(context)?;
    f.vh.validate_finite(context)
}

/// One Jacobi attempt with an explicit sweep budget, dispatching on the
/// structural realness hint.
fn svd_jacobi(a: &Matrix, max_sweeps: usize) -> Result<Svd> {
    if a.is_real() {
        return svd_real(a, max_sweeps);
    }
    let (m, n) = a.shape();
    let wide = m < n;
    // `w` holds the columns of A (tall) or of A^H (wide): k columns of
    // length `rows`, where k = min(m, n) is the thin rank.
    let k = m.min(n);
    let mut w: Vec<Vec<C64>> = if wide {
        (0..m).map(|j| a.row(j).iter().map(|z| z.conj()).collect()).collect()
    } else {
        (0..n).map(|j| a.col(j)).collect()
    };
    // Columns of W converge to U * diag(s); V accumulates the rotations.
    let mut v = Matrix::identity(k);
    let fro = a.norm_fro().max(1e-300);
    let n = k;

    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (wp, wq) = pair_mut(&mut w, p, q);
                let app: f64 = wp.iter().map(|z| z.norm_sqr()).sum();
                let aqq: f64 = wq.iter().map(|z| z.norm_sqr()).sum();
                let apq: C64 = wp.iter().zip(wq.iter()).map(|(x, y)| x.conj() * *y).sum();
                let g = apq.abs();
                // Relative criterion of Demmel-Veselic: the pair is converged
                // when the cosine of the angle between columns is at the level
                // of round-off.
                if g <= 1e-15 * (app * aqq).sqrt().max(1e-300) {
                    continue;
                }
                rotated = true;
                let phi = apq.arg();
                let zeta = (aqq - app) / (2.0 * g);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let e_m = C64::cis(-phi);
                // Column update [w_p, w_q] <- [w_p, w_q] * J with
                // J = [[c, s], [-s e^{-i phi}, c e^{-i phi}]].
                let jqp = -e_m.scale(s);
                let jqq = e_m.scale(c);
                for (xp, xq) in wp.iter_mut().zip(wq.iter_mut()) {
                    let old_p = *xp;
                    let old_q = *xq;
                    *xp = old_p.scale(c) + old_q * jqp;
                    *xq = old_p.scale(s) + old_q * jqq;
                }
                // Same update on the columns of V.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip.scale(c) + viq * jqp;
                    v[(i, q)] = vip.scale(s) + viq * jqq;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi in floating point can stall just above the strict
        // threshold; accept the result if the remaining coupling is tiny
        // relative to the matrix scale, otherwise report failure.
        let mut worst: f64 = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq: C64 = w[p].iter().zip(w[q].iter()).map(|(x, y)| x.conj() * *y).sum();
                worst = worst.max(apq.abs());
            }
        }
        if worst > 1e-9 * fro * fro {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi-svd",
                iterations: max_sweeps,
            });
        }
    }

    // Extract singular values and assemble the factors.
    let mut sigma: Vec<f64> =
        w.iter().map(|col| col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()).collect();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap_or(std::cmp::Ordering::Equal));

    let (m, n) = a.shape();
    let mut u = Matrix::zeros(m, k);
    let mut vh = Matrix::zeros(k, n);
    let mut s_sorted = Vec::with_capacity(k);
    let cutoff = sigma.iter().cloned().fold(0.0, f64::max) * 1e-300;
    for (newcol, &old) in order.iter().enumerate() {
        let sv = sigma[old];
        s_sorted.push(sv);
        let significant = sv > cutoff && sv > 0.0;
        if !significant {
            // Null direction: leave the W-derived factor zero (harmless for
            // truncation).
            sigma[old] = 0.0;
            if let Some(last) = s_sorted.last_mut() {
                *last = 0.0;
            }
        }
        if wide {
            // A = A^H^H = V' S W'^H: U comes from the accumulated rotations,
            // V^H rows from the (conjugated) converged columns.
            for r in 0..k {
                u[(r, newcol)] = v[(r, old)];
            }
            if significant {
                let inv = 1.0 / sv;
                for (r, z) in w[old].iter().enumerate() {
                    vh[(newcol, r)] = z.conj() * inv;
                }
            }
        } else {
            // A = W V^H: U columns from the converged columns, V^H rows from
            // the conjugated rotations.
            if significant {
                let inv = 1.0 / sv;
                let col: Vec<C64> = w[old].iter().map(|&z| z * inv).collect();
                u.set_col(newcol, &col);
            }
            for r in 0..k {
                vh[(newcol, r)] = v[(r, old)].conj();
            }
        }
    }
    Ok(Svd { u, s: s_sorted, vh })
}

/// Borrow two distinct entries of a vector of columns mutably.
fn pair_mut<T>(v: &mut [T], p: usize, q: usize) -> (&mut T, &mut T) {
    assert!(p < q);
    let (lo, hi) = v.split_at_mut(q);
    (&mut lo[p], &mut hi[0])
}

/// Real-only one-sided Jacobi SVD for inputs carrying the structural realness
/// hint. Identical iteration structure to the complex branch of [`svd`], with
/// the rotation phase degenerating to a sign (`e^{-i arg(a_pq)} = ±1` for real
/// `a_pq`), so every rotation is a plain real Givens rotation — no imaginary
/// plane is ever touched and both factors come back exactly real with the
/// hint set. The property test
/// `real_path_factorizations_match_complex_path_across_shape_classes` pins
/// the two branches' agreement at 1e-12 — any tolerance, pivoting, or
/// convergence change here must land in the complex branch too (and vice
/// versa).
fn svd_real(a: &Matrix, max_sweeps: usize) -> Result<Svd> {
    let (m, n_full) = a.shape();
    let wide = m < n_full;
    let k = m.min(n_full);
    // `w` holds the real parts of the columns of A (tall) or of A^T (wide).
    let mut w: Vec<Vec<f64>> = if wide {
        (0..m).map(|j| a.row(j).iter().map(|z| z.re).collect()).collect()
    } else {
        (0..n_full).map(|j| (0..m).map(|i| a[(i, j)].re).collect()).collect()
    };
    // Row-major k x k accumulator of the rotations (V factor).
    let mut v = vec![0.0f64; k * k];
    for i in 0..k {
        v[i * k + i] = 1.0;
    }
    let fro = a.norm_fro().max(1e-300);
    let n = k;

    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (wp, wq) = pair_mut(&mut w, p, q);
                let app: f64 = wp.iter().map(|x| x * x).sum();
                let aqq: f64 = wq.iter().map(|x| x * x).sum();
                let apq: f64 = wp.iter().zip(wq.iter()).map(|(x, y)| x * y).sum();
                let g = apq.abs();
                if g <= 1e-15 * (app * aqq).sqrt().max(1e-300) {
                    continue;
                }
                rotated = true;
                // e^{-i phi} for a real off-diagonal is just its sign.
                let sign = if apq >= 0.0 { 1.0 } else { -1.0 };
                let zeta = (aqq - app) / (2.0 * g);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let jqp = -sign * s;
                let jqq = sign * c;
                for (xp, xq) in wp.iter_mut().zip(wq.iter_mut()) {
                    let old_p = *xp;
                    let old_q = *xq;
                    *xp = old_p * c + old_q * jqp;
                    *xq = old_p * s + old_q * jqq;
                }
                for i in 0..n {
                    let vip = v[i * k + p];
                    let viq = v[i * k + q];
                    v[i * k + p] = vip * c + viq * jqp;
                    v[i * k + q] = vip * s + viq * jqq;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        let mut worst: f64 = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq: f64 = w[p].iter().zip(w[q].iter()).map(|(x, y)| x * y).sum();
                worst = worst.max(apq.abs());
            }
        }
        if worst > 1e-9 * fro * fro {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi-svd",
                iterations: max_sweeps,
            });
        }
    }

    // Extract singular values and assemble the factors.
    let mut sigma: Vec<f64> =
        w.iter().map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap_or(std::cmp::Ordering::Equal));

    let mut u = vec![0.0f64; m * k];
    let mut vh = vec![0.0f64; k * n_full];
    let mut s_sorted = Vec::with_capacity(k);
    let cutoff = sigma.iter().cloned().fold(0.0, f64::max) * 1e-300;
    for (newcol, &old) in order.iter().enumerate() {
        let sv = sigma[old];
        s_sorted.push(sv);
        let significant = sv > cutoff && sv > 0.0;
        if !significant {
            sigma[old] = 0.0;
            if let Some(last) = s_sorted.last_mut() {
                *last = 0.0;
            }
        }
        if wide {
            for r in 0..k {
                u[r * k + newcol] = v[r * k + old];
            }
            if significant {
                let inv = 1.0 / sv;
                for (r, x) in w[old].iter().enumerate() {
                    vh[newcol * n_full + r] = x * inv;
                }
            }
        } else {
            if significant {
                let inv = 1.0 / sv;
                for (r, x) in w[old].iter().enumerate() {
                    u[r * k + newcol] = x * inv;
                }
            }
            for r in 0..k {
                vh[newcol * n_full + r] = v[r * k + old];
            }
        }
    }
    let u = Matrix::from_real(m, k, &u)?;
    let vh = Matrix::from_real(k, n_full, &vh)?;
    Ok(Svd { u, s: s_sorted, vh })
}

/// Truncated SVD keeping at most `k` singular triplets (and dropping exact
/// zeros beyond the numerical rank).
pub fn svd_truncated(a: &Matrix, k: usize) -> Result<Svd> {
    if k == 0 {
        return Err(LinalgError::InvalidArgument {
            context: "svd_truncated: rank must be positive".to_string(),
        });
    }
    Ok(svd(a)?.truncated(k))
}

/// SVD through the Gram matrix `A^H A` (or `A A^H`, whichever is smaller):
/// faster than Jacobi for tall-skinny matrices at the cost of ~sqrt(eps)
/// accuracy on small singular values. Used where the paper forms Gram
/// matrices explicitly (Algorithm 5).
///
/// Both Gram products and the factor recovery run through the fused
/// [`Op::Adjoint`](crate::gemm::Op) GEMM paths — no transposed operand or
/// factor copy is materialised on either the tall or the wide branch.
pub fn svd_gram(a: &Matrix) -> Result<Svd> {
    use crate::gemm::{gemm, matmul_adj_b, Op};
    let (m, n) = a.shape();
    if m < n {
        // Wide: G = A A^H = U diag(lambda) U^H, sigma = sqrt(lambda), and
        // V^H = diag(1/sigma) U^H A with the adjoint fused into the GEMM.
        let g = matmul_adj_b(a, a);
        let e = eigh(&g)?;
        let n_eff = e.values.len();
        // eigh returns ascending order; we want descending singular values.
        let mut s = Vec::with_capacity(n_eff);
        let mut u = Matrix::zeros(m, n_eff);
        for (newcol, oldcol) in (0..n_eff).rev().enumerate() {
            s.push(e.values[oldcol].max(0.0).sqrt());
            u.set_col(newcol, &e.vectors.col(oldcol));
        }
        let mut vh = gemm(Op::Adjoint, Op::None, &u, a);
        // Row scaling by finite reals (and zero fills) keeps realness; row_mut
        // conservatively drops the hint, so restore it afterwards.
        let vh_real = vh.is_real();
        let smax = s.first().copied().unwrap_or(0.0);
        for i in 0..n_eff {
            if s[i] > smax * 1e-14 && s[i] > 0.0 {
                let inv = 1.0 / s[i];
                for z in vh.row_mut(i) {
                    *z = z.scale(inv);
                }
            } else {
                vh.row_mut(i).fill(C64::ZERO);
            }
        }
        if vh_real {
            vh.assume_real();
        }
        return Ok(Svd { u, s, vh });
    }
    // Tall: G = A^H A = V diag(lambda) V^H, sigma = sqrt(lambda),
    // U = A V / sigma with A V computed as A (V^H)^H via the fused GEMM.
    let g = matmul_adj_a(a, a);
    let e = eigh(&g)?;
    let n_eff = e.values.len();
    let mut s = Vec::with_capacity(n_eff);
    let mut vh = Matrix::zeros(n_eff, n);
    for (newrow, oldcol) in (0..n_eff).rev().enumerate() {
        s.push(e.values[oldcol].max(0.0).sqrt());
        for r in 0..n {
            vh[(newrow, r)] = e.vectors[(r, oldcol)].conj();
        }
    }
    // Conjugated copies of real eigenvectors are real; IndexMut dropped the
    // hint conservatively.
    if e.vectors.is_real() {
        vh.assume_real();
    }
    let av = gemm(Op::None, Op::Adjoint, a, &vh);
    let mut u = Matrix::zeros(m, n_eff);
    let smax = s.first().copied().unwrap_or(0.0);
    for j in 0..n_eff {
        if s[j] > smax * 1e-14 && s[j] > 0.0 {
            let inv = 1.0 / s[j];
            let col: Vec<C64> = av.col(j).iter().map(|&z| z * inv).collect();
            u.set_col(j, &col);
        }
    }
    Ok(Svd { u, s, vh })
}

/// Convenience: best rank-`k` approximation factors `(L, R)` with `A ≈ L R`,
/// splitting the singular values evenly between the factors (the convention
/// used by the PEPS simple-update truncation).
pub fn low_rank_factors(a: &Matrix, k: usize) -> Result<(Matrix, Matrix)> {
    let f = svd_truncated(a, k)?;
    Ok(f.absorb_split())
}

/// Spectral norm (largest singular value).
pub fn spectral_norm(a: &Matrix) -> Result<f64> {
    Ok(svd(a)?.s.first().copied().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_svd(a: &Matrix, tol: f64) -> Svd {
        let f = svd(a).expect("svd failed");
        let (m, n) = a.shape();
        let k = m.min(n);
        assert_eq!(f.u.shape(), (m, k));
        assert_eq!(f.vh.shape(), (k, n));
        assert_eq!(f.s.len(), k);
        assert!(f.reconstruct().approx_eq(a, tol * a.norm_max().max(1.0)), "USV^H != A");
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
        assert!(f.s.iter().all(|&x| x >= 0.0));
        f
    }

    #[test]
    fn diagonal_matrix_has_obvious_singular_values() {
        let a = Matrix::from_diag_real(&[3.0, -5.0, 1.0]);
        let f = check_svd(&a, 1e-12);
        assert!((f.s[0] - 5.0).abs() < 1e-12);
        assert!((f.s[1] - 3.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_matrices_reconstruct() {
        let mut rng = StdRng::seed_from_u64(40);
        for &(m, n) in &[(1usize, 1usize), (4, 4), (10, 4), (4, 10), (17, 9), (9, 17)] {
            let a = Matrix::random(m, n, &mut rng);
            let f = check_svd(&a, 1e-10);
            assert!(f.u.has_orthonormal_cols(1e-10));
            assert!(f.vh.adjoint().has_orthonormal_cols(1e-10));
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = Matrix::random(8, 3, &mut rng);
        let c = Matrix::random(3, 8, &mut rng);
        let a = matmul(&b, &c);
        let f = check_svd(&a, 1e-9);
        // Only 3 significant singular values.
        assert!(f.s[3] < 1e-10 * f.s[0]);
    }

    #[test]
    fn truncation_error_matches_discarded_tail() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Matrix::random(10, 10, &mut rng);
        let f = svd(&a).unwrap();
        let k = 4;
        let trunc = f.truncated(k);
        let err = (&a - &trunc.reconstruct()).norm_fro();
        assert!((err - f.truncation_error(k)).abs() < 1e-9, "Eckart-Young mismatch");
    }

    #[test]
    fn gram_svd_agrees_with_jacobi_on_well_conditioned_input() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = Matrix::random(20, 6, &mut rng);
        let f1 = svd(&a).unwrap();
        let f2 = svd_gram(&a).unwrap();
        for (x, y) in f1.s.iter().zip(f2.s.iter()) {
            assert!((x - y).abs() < 1e-8 * f1.s[0]);
        }
        assert!(f2.reconstruct().approx_eq(&a, 1e-8));
        // Wide input goes through the adjoint path.
        let b = Matrix::random(5, 14, &mut rng);
        assert!(svd_gram(&b).unwrap().reconstruct().approx_eq(&b, 1e-8));
    }

    #[test]
    fn absorb_variants_reassemble() {
        let mut rng = StdRng::seed_from_u64(44);
        let a = Matrix::random(6, 5, &mut rng);
        let f = svd(&a).unwrap();
        let (l, r) = f.absorb_left();
        assert!(matmul(&l, &r).approx_eq(&a, 1e-10));
        let (l, r) = f.absorb_right();
        assert!(matmul(&l, &r).approx_eq(&a, 1e-10));
        let (l, r) = f.absorb_split();
        assert!(matmul(&l, &r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn low_rank_factors_shapes() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = Matrix::random(9, 7, &mut rng);
        let (l, r) = low_rank_factors(&a, 3).unwrap();
        assert_eq!(l.shape(), (9, 3));
        assert_eq!(r.shape(), (3, 7));
        assert!(svd_truncated(&a, 0).is_err());
    }

    #[test]
    fn spectral_norm_of_unitary_is_one() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = Matrix::random(8, 8, &mut rng);
        let q = crate::qr::orthonormalize(&a);
        assert!((spectral_norm(&q).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hermitian_phase_handling() {
        // A matrix with genuinely complex singular vectors.
        let a = Matrix::from_vec(
            2,
            2,
            vec![c64(0.0, 2.0), c64(1.0, -1.0), c64(-3.0, 0.5), c64(0.0, -1.0)],
        )
        .unwrap();
        check_svd(&a, 1e-12);
    }

    #[test]
    fn non_finite_input_is_rejected_up_front() {
        let before = koala_error::recovery::snapshot();
        let mut a = Matrix::zeros(3, 3);
        a[(1, 2)] = c64(f64::NAN, 0.0);
        match svd(&a) {
            Err(LinalgError::NonFinite { context }) => assert!(context.contains("svd input")),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        let after = koala_error::recovery::snapshot();
        assert!(after.nonfinite_detections > before.nonfinite_detections);
    }

    #[test]
    fn exhausted_sweep_budget_reports_no_convergence() {
        let mut rng = StdRng::seed_from_u64(47);
        let a = Matrix::random(6, 4, &mut rng);
        // Zero sweeps cannot decorrelate random columns.
        match super::svd_jacobi(&a, 0) {
            Err(LinalgError::NoConvergence { algorithm, iterations }) => {
                assert_eq!(algorithm, "jacobi-svd");
                assert_eq!(iterations, 0);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn ladder_escalates_then_falls_back_to_gram() {
        let mut rng = StdRng::seed_from_u64(48);
        for hint_real in [false, true] {
            let a = if hint_real {
                Matrix::random_real(12, 5, &mut rng)
            } else {
                Matrix::random(12, 5, &mut rng)
            };
            let before = koala_error::recovery::snapshot();
            // Zero-sweep budgets force both Jacobi rungs to fail, so the
            // ladder must land on the Gram-SVD fallback and still factorize.
            let f = super::svd_with_budgets(&a, 0, 0).expect("gram fallback should succeed");
            assert!(f.reconstruct().approx_eq(&a, 1e-8), "fallback factors must reconstruct");
            let after = koala_error::recovery::snapshot();
            assert!(after.svd_sweep_escalations > before.svd_sweep_escalations);
            assert!(after.gram_svd_fallbacks > before.gram_svd_fallbacks);
        }
    }

    #[test]
    fn empty_and_single_entry() {
        let f = svd(&Matrix::zeros(0, 3)).unwrap();
        assert_eq!(f.s.len(), 0);
        let a = Matrix::from_vec(1, 1, vec![c64(0.0, -2.0)]).unwrap();
        let f = check_svd(&a, 1e-14);
        assert!((f.s[0] - 2.0).abs() < 1e-14);
    }
}
