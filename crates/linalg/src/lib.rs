//! # koala-linalg
//!
//! Dense complex linear algebra substrate for the koala-rs reproduction of
//! *"Efficient 2D Tensor Network Simulation of Quantum Systems"* (SC 2020).
//!
//! The original Koala library delegates its dense kernels to NumPy/MKL,
//! CuPy, or Cyclops+ScaLAPACK. This crate provides the equivalent from-scratch
//! building blocks used by every layer above it:
//!
//! * [`scalar::C64`] — complex double-precision scalar,
//! * [`matrix::Matrix`] — dense row-major complex matrix,
//! * [`gemm`] — blocked, Rayon-parallel matrix multiplication,
//! * [`qr`] — thin QR (modified Gram-Schmidt with reorthogonalization),
//! * [`svd`] — one-sided Jacobi SVD, truncated SVD, Gram-based SVD,
//! * [`eig`] — Hermitian Jacobi eigendecomposition and matrix functions,
//! * [`rsvd`] — randomized SVD with implicitly applied operators
//!   (paper Algorithm 4),
//! * [`gram`] — reshape-avoiding Gram-matrix orthogonalization
//!   (paper Algorithm 5, local math),
//! * [`solve`] — LU / triangular solvers and inverses,
//! * [`expm`] — matrix exponentials for time evolution and gate synthesis,
//! * [`lanczos`] — ground states of large implicit Hermitian operators.

#![warn(missing_docs)]

pub mod error;
pub mod scalar;

pub mod eig;
pub mod expm;
pub mod gemm;
pub mod gram;
pub mod lanczos;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod qr;
pub mod rsvd;
pub mod solve;
pub mod svd;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use scalar::{c64, C64};

pub use eig::{eigh, eigvalsh, funm_hermitian, EigH};
pub use expm::{expm, expm_hermitian};
pub use gemm::{gemm, gemm_into, matmul, matmul_adj_a, matmul_adj_b, Op};
pub use gram::{gram_orthonormalize, gram_qr, GramQr};
pub use lanczos::{lanczos_ground_state, DenseHermitianOp, HermitianOp, LanczosResult};
pub use qr::{orthonormalize, qr, QrFactors};
pub use rsvd::{rsvd, rsvd_matrix, ComposedOp, LinearOp, MatOp, RsvdOptions};
pub use solve::{inverse, lu, solve, solve_upper_triangular, upper_triangular_inverse};
pub use svd::{
    low_rank_factors, scale_cols, scale_rows, spectral_norm, svd, svd_gram, svd_truncated, Svd,
};
