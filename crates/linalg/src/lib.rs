//! # koala-linalg
//!
//! Dense complex linear algebra substrate for the koala-rs reproduction of
//! *"Efficient 2D Tensor Network Simulation of Quantum Systems"* (SC 2020).
//!
//! The original Koala library delegates its dense kernels to NumPy/MKL,
//! CuPy, or Cyclops+ScaLAPACK. This crate provides the equivalent from-scratch
//! building blocks used by every layer above it:
//!
//! * [`scalar::C64`] — complex double-precision scalar,
//! * [`matrix::Matrix`] — dense row-major complex matrix,
//! * [`mod@gemm`] — blocked, task-graph-parallel matrix multiplication
//!   (packed panels shared across macro-tiles on the `koala-exec`
//!   executor),
//! * [`mod@qr`] — thin QR (modified Gram-Schmidt with reorthogonalization),
//! * [`mod@svd`] — one-sided Jacobi SVD, truncated SVD, Gram-based SVD,
//! * [`mod@eig`] — Hermitian Jacobi eigendecomposition and matrix functions,
//! * [`mod@rsvd`] — randomized SVD with implicitly applied operators
//!   (paper Algorithm 4),
//! * [`mod@gram`] — reshape-avoiding Gram-matrix orthogonalization
//!   (paper Algorithm 5, local math),
//! * [`mod@solve`] — LU / triangular solvers, least squares, and inverses,
//! * [`mod@expm`] — matrix exponentials for time evolution and gate synthesis,
//! * [`mod@lanczos`] — ground states of large implicit Hermitian operators.
//!
//! A design rule runs through the whole crate: **transposition is never
//! materialised on a multiply path.** The packed GEMM fuses
//! [`Op::Adjoint`](gemm::Op) / [`Op::Transpose`](gemm::Op) into operand
//! packing, and the SVD / Gram / randomized-SVD / solve kernels route their
//! products through those fused paths instead of calling
//! [`Matrix::adjoint`]. The [`matrix::transpose_counter`] diagnostic lets
//! tests pin that property down.
//!
//! A second rule follows the same spirit: **purely real data never pays for
//! complex arithmetic.** Every [`Matrix`] carries a structural
//! [`is_real`](Matrix::is_real) hint (set by real constructors, propagated by
//! realness-preserving operations, conservatively dropped by raw mutation);
//! [`gemm::gemm`] routes products of hinted-real operands onto a real-only
//! microkernel that executes one quarter of the FMAs, and the split-complex
//! packers detect all-real cache blocks so even unhinted real data drops to
//! the cheap kernel per depth block. See [`mod@gemm`] for the dispatch rules
//! and the flop-accounting convention ([`gemm::flop_counter`] /
//! [`gemm::real_mac_counter`]). Work accounting is *scoped*: the counters
//! are views of the process-global [`WorkMeter`], and callers that need
//! per-workload attribution (e.g. per-tenant billing in `koala-serve`) wrap
//! their work in [`WorkMeter::scope`] — the scope travels with executor
//! tasks, so a workload's ledger is exact even when its GEMM tiles run on
//! shared pool workers.
//!
//! # Example: fused adjoint GEMM with [`gemm::gemm_into`]
//!
//! `gemm_into` accumulates `op(A) * op(B)` into a caller-owned buffer; the
//! transposition only changes the packing gather order, so no copy of `A` is
//! made:
//!
//! ```
//! use koala_linalg::gemm::{gemm_into, Op};
//! use koala_linalg::{c64, C64};
//!
//! // A is stored 2x3 row-major; we multiply A^H (3x2) by B (2x2).
//! let a = [c64(1., 1.), c64(2., 0.), c64(0., 3.), c64(4., 0.), c64(5., 0.), c64(6., 0.)];
//! let b = [c64(1., 0.), c64(0., 0.), c64(0., 0.), c64(1., 0.)]; // identity
//! let (m, n, k) = (3, 2, 2); // effective shapes: A^H is 3x2, B is 2x2
//! let mut c = vec![C64::ZERO; m * n];
//! gemm_into(Op::Adjoint, Op::None, m, n, k, &a, &b, &mut c);
//! // C = A^H * I = A^H: entry (0, 0) is conj(A[0, 0]).
//! assert_eq!(c[0], c64(1., -1.));
//! assert_eq!(c[1], c64(4., 0.));
//! ```

#![warn(missing_docs)]
// Library code must not panic on fallible paths: every failure is a
// `LinalgError` (bridged to the workspace `KoalaError`), so the recovery
// ladder above can catch and degrade instead of aborting a long job.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod scalar;

pub mod eig;
pub mod expm;
pub mod gemm;
pub mod gram;
pub mod lanczos;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod qr;
pub mod rsvd;
pub mod solve;
pub mod svd;

pub use error::{LinalgError, Result};
pub use koala_exec::meter::{WorkLedger, WorkMeter};
pub use matrix::{reset_transpose_counter, transpose_counter, Matrix};
pub use scalar::{c64, C64};

pub use eig::{eigh, eigvalsh, funm_hermitian, EigH};
pub use expm::{expm, expm_hermitian};
pub use gemm::{
    flop_counter, gemm, gemm_into, gemm_into_real, matmul, matmul_adj_a, matmul_adj_b,
    real_mac_counter, reset_flop_counter, Op,
};
pub use gram::{gram_orthonormalize, gram_qr, gram_r_factors, GramQr};
pub use lanczos::{lanczos_ground_state, DenseHermitianOp, HermitianOp, LanczosResult};
pub use qr::{orthonormalize, qr, QrFactors};
pub use rsvd::{rsvd, rsvd_matrix, ComposedOp, LinearOp, MatOp, RsvdOptions};
pub use solve::{inverse, lstsq, lu, solve, solve_upper_triangular, upper_triangular_inverse};
pub use svd::{
    low_rank_factors, scale_cols, scale_rows, spectral_norm, svd, svd_gram, svd_truncated, Svd,
};
