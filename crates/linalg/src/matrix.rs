//! Dense row-major complex matrix.

use crate::error::{LinalgError, Result};
use crate::scalar::{c64, C64};
use rand::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of materialised transpositions ([`Matrix::transpose`] /
/// [`Matrix::adjoint`] calls). The hot linalg paths are expected to fuse
/// transposition into GEMM packing via [`crate::gemm::Op`] instead of
/// materialising copies; tests assert the counter stays at zero across those
/// paths. Diagnostics only — never used for control flow.
static TRANSPOSE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Read the global transpose/adjoint materialisation counter.
pub fn transpose_counter() -> u64 {
    TRANSPOSE_COUNTER.load(Ordering::Relaxed)
}

/// Reset the materialisation counter, returning its previous value.
pub fn reset_transpose_counter() -> u64 {
    TRANSPOSE_COUNTER.swap(0, Ordering::Relaxed)
}

/// Dense matrix of [`C64`] stored in row-major order.
///
/// # Realness hint
///
/// Every matrix carries a structural `is_real` hint: `true` guarantees that
/// every imaginary part is exactly zero, `false` means "unknown" (the data may
/// still happen to be real). The hint is set by real constructors
/// ([`Matrix::from_real`], [`Matrix::zeros`], [`Matrix::identity`], ...),
/// propagated by operations that cannot introduce imaginary parts
/// (transpose, conjugation, scaling by a real scalar, addition of two real
/// matrices, ...), and conservatively dropped by any raw mutable access
/// ([`Matrix::data_mut`], indexing assignment). [`crate::gemm::gemm`] uses it
/// to route products of real operands onto the real-only microkernel, which
/// executes a quarter of the FMAs of the split-complex kernel — so a wrong
/// `true` would silently corrupt results. Never set it by assumption; use
/// [`Matrix::mark_real_if_exact`] (a scan) or [`Matrix::assume_real`] (a
/// structural guarantee, scanned under `debug_assertions`).
#[derive(Clone)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<C64>,
    /// Structural realness hint; see the type-level docs. Never observable
    /// through `PartialEq` — two matrices with equal data compare equal
    /// regardless of their hints.
    real: bool,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows && self.ncols == other.ncols && self.data == other.data
    }
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix { nrows, ncols, data: vec![C64::ZERO; nrows * ncols], real: true }
    }

    /// Matrix filled with a constant.
    pub fn full(nrows: usize, ncols: usize, value: C64) -> Self {
        Matrix { nrows, ncols, data: vec![value; nrows * ncols], real: value.im == 0.0 }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m.real = true;
        m
    }

    /// Build from a row-major data vector.
    ///
    /// Returns an error if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<C64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "from_vec: data length {} does not match {}x{}",
                    data.len(),
                    nrows,
                    ncols
                ),
            });
        }
        // No realness scan here: from_vec sits on hot paths (GEMM outputs,
        // matricizations). Callers that know the data is real follow up with
        // `assume_real` / `mark_real_if_exact`.
        Ok(Matrix { nrows, ncols, data, real: false })
    }

    /// Build from a row-major slice of real numbers.
    pub fn from_real(nrows: usize, ncols: usize, data: &[f64]) -> Result<Self> {
        let cdata = data.iter().map(|&x| C64::from_real(x)).collect();
        let mut m = Matrix::from_vec(nrows, ncols, cdata)?;
        m.real = true;
        Ok(m)
    }

    /// Build from nested rows (primarily for tests and gate definitions).
    /// Small-matrix constructor, so the realness hint is set by scanning.
    pub fn from_rows(rows: &[Vec<C64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(LinalgError::DimensionMismatch {
                context: "from_rows: ragged rows".to_string(),
            });
        }
        let data: Vec<C64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let real = data.iter().all(|z| z.im == 0.0);
        Ok(Matrix { nrows, ncols, data, real })
    }

    /// Diagonal matrix from a vector of diagonal entries.
    pub fn from_diag(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m.real = diag.iter().all(|z| z.im == 0.0);
        m
    }

    /// Diagonal matrix from real diagonal entries.
    pub fn from_diag_real(diag: &[f64]) -> Self {
        let entries: Vec<C64> = diag.iter().map(|&x| C64::from_real(x)).collect();
        Matrix::from_diag(&entries)
    }

    /// Matrix with independent entries uniform in `[-1, 1]` for both components.
    pub fn random<R: Rng + ?Sized>(nrows: usize, ncols: usize, rng: &mut R) -> Self {
        let data = (0..nrows * ncols)
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        Matrix { nrows, ncols, data, real: false }
    }

    /// Random matrix with purely real entries uniform in `[-1, 1]`.
    pub fn random_real<R: Rng + ?Sized>(nrows: usize, ncols: usize, rng: &mut R) -> Self {
        let data = (0..nrows * ncols).map(|_| c64(rng.gen_range(-1.0..1.0), 0.0)).collect();
        Matrix { nrows, ncols, data, real: true }
    }

    /// Random Hermitian matrix (A + A^H)/2.
    pub fn random_hermitian<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let a = Matrix::random(n, n, rng);
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
            }
        }
        h
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// True if the matrix has zero rows or columns.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0 || self.ncols == 0
    }

    /// Raw row-major data.
    #[inline(always)]
    pub fn data(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw row-major data. Drops the realness hint: the caller may
    /// write arbitrary complex values through the returned slice.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [C64] {
        self.real = false;
        &mut self.data
    }

    /// Consume the matrix and return its row-major data vector.
    pub fn into_data(self) -> Vec<C64> {
        self.data
    }

    /// Structural realness hint: `true` guarantees every imaginary part is
    /// exactly zero; `false` means unknown. See the type-level docs.
    #[inline(always)]
    pub fn is_real(&self) -> bool {
        self.real
    }

    /// Assert that every imaginary part of this matrix is exactly zero,
    /// setting the realness hint without a scan in release builds.
    ///
    /// Use only when realness is structurally guaranteed (e.g. the buffer was
    /// filled by the real-only GEMM path). A wrong assertion makes later
    /// products silently drop imaginary parts; under `debug_assertions` the
    /// claim is verified by a full scan.
    pub fn assume_real(&mut self) {
        debug_assert!(
            self.data.iter().all(|z| z.im == 0.0),
            "assume_real: matrix has nonzero imaginary parts"
        );
        self.real = true;
    }

    /// Scan the data and set the realness hint iff every imaginary part is
    /// exactly zero (`-0.0` counts as zero). Returns the resulting hint.
    ///
    /// O(nrows * ncols) — intended for one-time construction points (gate
    /// matrices, Hamiltonian terms), not hot loops.
    pub fn mark_real_if_exact(&mut self) -> bool {
        self.real = self.data.iter().all(|z| z.im == 0.0);
        self.real
    }

    /// Zero every imaginary part and set the realness hint.
    ///
    /// For results that are real *mathematically* but carry O(eps) imaginary
    /// rounding noise from intermediate phases (e.g. `exp(-tau H)` of a real
    /// symmetric `H` computed through a complex eigendecomposition), this is a
    /// correction toward the exact value, not an approximation.
    pub fn project_real(&mut self) {
        for z in &mut self.data {
            z.im = 0.0;
        }
        self.real = true;
    }

    /// [`Matrix::project_real`] guarded by a tolerance that scales with the
    /// data: imaginary parts are zeroed (and the hint set) only if every
    /// `|im|` is at most `max_abs * n * EPSILON`, where `max_abs` is the
    /// largest entry modulus and `n = max(nrows, ncols)`. Returns whether the
    /// projection was applied.
    ///
    /// This is the right guard for results of complex Jacobi sweeps on
    /// mathematically-real inputs: their imaginary rounding noise grows with
    /// both the matrix scale and the number of rotations, so any *hardcoded*
    /// eps either falsely keeps the hint on large ill-conditioned matrices or
    /// loses it on well-behaved ones. A result whose imaginary parts exceed
    /// the scaled bound is genuinely complex (or a bug upstream) and is left
    /// untouched.
    pub fn project_real_if_negligible(&mut self) -> bool {
        let max_abs = self.norm_max();
        let n = self.nrows.max(self.ncols) as f64;
        let tol = max_abs * n * f64::EPSILON;
        if self.data.iter().all(|z| z.im.abs() <= tol) {
            self.project_real();
            true
        } else {
            false
        }
    }

    /// Borrow one row as a slice.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Borrow one row mutably. Drops the realness hint (see
    /// [`Matrix::data_mut`]).
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [C64] {
        self.real = false;
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<C64> {
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j`. The realness hint survives iff it was set and the
    /// new column is exactly real (an O(nrows) scan).
    pub fn set_col(&mut self, j: usize, col: &[C64]) {
        assert_eq!(col.len(), self.nrows, "set_col: wrong column length");
        let keep_real = self.real && col.iter().all(|z| z.im == 0.0);
        for i in 0..self.nrows {
            self[(i, j)] = col[i];
        }
        self.real = keep_real;
    }

    /// Transpose (no conjugation). Runs in `32 x 32` cache tiles so both the
    /// row reads and the column writes stay cache-resident on large matrices.
    ///
    /// Note the GEMM layer never calls this: [`crate::gemm::gemm`] fuses
    /// transposition into operand packing instead of materialising a copy.
    /// The linalg kernels (`svd`, `gram`, `rsvd`, `solve`) likewise route
    /// their multiplications through [`crate::gemm::Op::Adjoint`] /
    /// [`crate::gemm::Op::Transpose`] — [`transpose_counter`] counts the
    /// materialisations that remain, so tests can pin that property down.
    pub fn transpose(&self) -> Matrix {
        TRANSPOSE_COUNTER.fetch_add(1, Ordering::Relaxed);
        self.transpose_with(|z| z)
    }

    /// Conjugate transpose `A^H` (cache-blocked like [`Matrix::transpose`]).
    pub fn adjoint(&self) -> Matrix {
        TRANSPOSE_COUNTER.fetch_add(1, Ordering::Relaxed);
        self.transpose_with(C64::conj)
    }

    fn transpose_with(&self, f: impl Fn(C64) -> C64) -> Matrix {
        const B: usize = 32;
        let (m, n) = self.shape();
        let mut t = Matrix::zeros(n, m);
        let src = &self.data;
        let dst = t.data_mut();
        for i0 in (0..m).step_by(B) {
            let imax = (i0 + B).min(m);
            for j0 in (0..n).step_by(B) {
                let jmax = (j0 + B).min(n);
                for i in i0..imax {
                    for j in j0..jmax {
                        dst[j * m + i] = f(src[i * n + j]);
                    }
                }
            }
        }
        // Both transpose flavours map real entries to real entries.
        t.real = self.real;
        t
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        let data = self.data.iter().map(|z| z.conj()).collect();
        Matrix { nrows: self.nrows, ncols: self.ncols, data, real: self.real }
    }

    /// Multiply every entry by a scalar.
    ///
    /// The realness hint survives only for a *finite* real scalar: for
    /// `s.re = inf/NaN` the complex multiply produces `0.0 * s.re = NaN`
    /// imaginary parts, which would break the hint's exact-zero guarantee.
    pub fn scale(&self, s: C64) -> Matrix {
        let data = self.data.iter().map(|&z| z * s).collect();
        let real = self.real && s.im == 0.0 && s.re.is_finite();
        Matrix { nrows: self.nrows, ncols: self.ncols, data, real }
    }

    /// In-place scalar multiplication (hint rule as in [`Matrix::scale`]).
    pub fn scale_inplace(&mut self, s: C64) {
        self.real = self.real && s.im == 0.0 && s.re.is_finite();
        for z in &mut self.data {
            *z *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Cheap NaN/Inf guard: `Ok` iff every entry is finite.
    ///
    /// The fault-tolerance layer calls this on factorization outputs so
    /// corruption is caught where it enters, not three calls later. On
    /// failure, `context` names the operation for the error chain.
    pub fn validate_finite(&self, context: &str) -> crate::error::Result<()> {
        if self.data.iter().all(|z| z.re.is_finite() && z.im.is_finite()) {
            Ok(())
        } else {
            koala_error::recovery::note_nonfinite_detection();
            Err(crate::error::LinalgError::NonFinite {
                context: format!("{context} ({}x{} matrix)", self.nrows, self.ncols),
            })
        }
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> C64 {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Copy of the main diagonal.
    pub fn diag(&self) -> Vec<C64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Extract the sub-matrix `rows x cols` starting at `(row0, col0)`.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.nrows && col0 + cols <= self.ncols, "submatrix out of range");
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            out.row_mut(i).copy_from_slice(&self.row(row0 + i)[col0..col0 + cols]);
        }
        out.real = self.real;
        out
    }

    /// Write `block` into this matrix with its top-left corner at `(row0, col0)`.
    /// The realness hint survives iff both `self` and `block` carry it.
    pub fn set_submatrix(&mut self, row0: usize, col0: usize, block: &Matrix) {
        assert!(
            row0 + block.nrows <= self.nrows && col0 + block.ncols <= self.ncols,
            "set_submatrix out of range"
        );
        let keep_real = self.real && block.real;
        for i in 0..block.nrows {
            let dst = &mut self.row_mut(row0 + i)[col0..col0 + block.ncols];
            dst.copy_from_slice(block.row(i));
        }
        self.real = keep_real;
    }

    /// Keep only the first `k` columns.
    pub fn truncate_cols(&self, k: usize) -> Matrix {
        let k = k.min(self.ncols);
        self.submatrix(0, 0, self.nrows, k)
    }

    /// Keep only the first `k` rows.
    pub fn truncate_rows(&self, k: usize) -> Matrix {
        let k = k.min(self.nrows);
        self.submatrix(0, 0, k, self.ncols)
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.nrows != other.nrows {
            return Err(LinalgError::DimensionMismatch {
                context: format!("hstack: {} rows vs {} rows", self.nrows, other.nrows),
            });
        }
        let mut out = Matrix::zeros(self.nrows, self.ncols + other.ncols);
        out.set_submatrix(0, 0, self);
        out.set_submatrix(0, self.ncols, other);
        Ok(out)
    }

    /// Vertical concatenation.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.ncols != other.ncols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("vstack: {} cols vs {} cols", self.ncols, other.ncols),
            });
        }
        let mut out = Matrix::zeros(self.nrows + other.nrows, self.ncols);
        out.set_submatrix(0, 0, self);
        out.set_submatrix(self.nrows, 0, other);
        Ok(out)
    }

    /// Maximum entry-wise deviation from another matrix.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_diff: shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max)
    }

    /// True if `self` is entry-wise within `tol` of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_diff(other) <= tol
    }

    /// True if the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in i..self.ncols {
                if !(self[(i, j)] - self[(j, i)].conj()).abs().le(&tol) {
                    return false;
                }
            }
        }
        true
    }

    /// True if `A^H A ≈ I` within `tol` (columns orthonormal).
    pub fn has_orthonormal_cols(&self, tol: f64) -> bool {
        let g = crate::gemm::matmul_adj_a(self, self);
        g.approx_eq(&Matrix::identity(self.ncols), tol)
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![C64::ZERO; self.nrows];
        for i in 0..self.nrows {
            let row = self.row(i);
            let mut acc = C64::ZERO;
            for j in 0..self.ncols {
                acc = acc.mul_add(row[j], x[j]);
            }
            y[i] = acc;
        }
        y
    }

    /// Adjoint matrix-vector product `A^H y`.
    pub fn matvec_adj(&self, y: &[C64]) -> Vec<C64> {
        assert_eq!(y.len(), self.nrows, "matvec_adj: length mismatch");
        let mut x = vec![C64::ZERO; self.ncols];
        for i in 0..self.nrows {
            let row = self.row(i);
            let yi = y[i];
            for j in 0..self.ncols {
                x[j] = x[j].mul_add(row[j].conj(), yi);
            }
        }
        x
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.nrows && j < self.ncols, "index ({i},{j}) out of range");
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.nrows && j < self.ncols, "index ({i},{j}) out of range");
        // The caller may write any complex value through the reference.
        self.real = false;
        &mut self.data[i * self.ncols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let max_rows = 8.min(self.nrows);
        for i in 0..max_rows {
            write!(f, "  ")?;
            let max_cols = 8.min(self.ncols);
            for j in 0..max_cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            if self.ncols > max_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.nrows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add: shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a + *b).collect();
        Matrix { nrows: self.nrows, ncols: self.ncols, data, real: self.real && rhs.real }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub: shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a - *b).collect();
        Matrix { nrows: self.nrows, ncols: self.ncols, data, real: self.real && rhs.real }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(c64(-1.0, 0.0))
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix add_assign: shape mismatch");
        self.real = self.real && rhs.real;
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub_assign: shape mismatch");
        self.real = self.real && rhs.real;
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= *b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        crate::gemm::matmul(self, rhs)
    }
}

impl Mul<C64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: C64) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&x| x == C64::ZERO));
        let id = Matrix::identity(3);
        assert_eq!(id.trace(), c64(3.0, 0.0));
        assert!(Matrix::from_vec(2, 2, vec![C64::ONE; 3]).is_err());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m[(2, 1)] = c64(1.0, -1.0);
        assert_eq!(m[(2, 1)], c64(1.0, -1.0));
        assert_eq!(m.row(2)[1], c64(1.0, -1.0));
        assert_eq!(m.col(1)[2], c64(1.0, -1.0));
    }

    #[test]
    fn adjoint_is_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(4, 6, &mut rng);
        assert!(a.adjoint().adjoint().approx_eq(&a, 0.0));
        assert!(a.transpose().conj().approx_eq(&a.adjoint(), 0.0));
    }

    #[test]
    fn hermitian_detection() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = Matrix::random_hermitian(5, &mut rng);
        assert!(h.is_hermitian(1e-14));
        let a = Matrix::random(5, 5, &mut rng);
        assert!(!a.is_hermitian(1e-10));
    }

    #[test]
    fn submatrix_and_stacking() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_real(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(1, 3)], c64(8.0, 0.0));
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 0)], c64(7.0, 0.0));
        assert!(v.submatrix(2, 0, 2, 2).approx_eq(&b, 0.0));
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn norms_and_trace() {
        let a = Matrix::from_real(2, 2, &[3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((a.norm_fro() - 5.0).abs() < 1e-14);
        assert!((a.norm_max() - 4.0).abs() < 1e-14);
        assert_eq!(a.trace(), c64(7.0, 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random(4, 3, &mut rng);
        let x = Matrix::random(3, 1, &mut rng);
        let y = a.matvec(x.data());
        let y2 = crate::gemm::matmul(&a, &x);
        for i in 0..4 {
            assert!(y[i].approx_eq(y2[(i, 0)], 1e-12));
        }
        let z = Matrix::random(4, 1, &mut rng);
        let w = a.matvec_adj(z.data());
        let w2 = crate::gemm::matmul_adj_a(&a, &z);
        for i in 0..3 {
            assert!(w[i].approx_eq(w2[(i, 0)], 1e-12));
        }
    }

    #[test]
    fn realness_hint_constructors_and_propagation() {
        let mut rng = StdRng::seed_from_u64(5);
        // Constructors.
        assert!(Matrix::zeros(2, 3).is_real());
        assert!(Matrix::identity(4).is_real());
        assert!(Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap().is_real());
        assert!(Matrix::from_diag_real(&[1.0, -2.0]).is_real());
        assert!(Matrix::random_real(3, 3, &mut rng).is_real());
        assert!(Matrix::full(2, 2, c64(1.5, 0.0)).is_real());
        assert!(!Matrix::full(2, 2, c64(1.5, 1e-300)).is_real());
        assert!(!Matrix::random(3, 3, &mut rng).is_real());
        assert!(!Matrix::from_diag(&[C64::I]).is_real());
        assert!(Matrix::from_diag(&[C64::ONE]).is_real());
        // from_vec is conservative; mark_real_if_exact recovers by scanning.
        let mut laundered = Matrix::from_vec(1, 2, vec![C64::ONE, c64(2.0, -0.0)]).unwrap();
        assert!(!laundered.is_real());
        assert!(laundered.mark_real_if_exact());
        // Propagation.
        let r = Matrix::random_real(3, 4, &mut rng);
        let z = Matrix::random(3, 4, &mut rng);
        assert!(r.transpose().is_real());
        assert!(r.adjoint().is_real());
        assert!(r.conj().is_real());
        assert!(r.scale(c64(2.0, 0.0)).is_real());
        assert!(!r.scale(C64::I).is_real());
        // A non-finite real scalar would produce NaN imaginary parts
        // (0.0 * inf), so the hint must drop.
        assert!(!r.scale(c64(f64::INFINITY, 0.0)).is_real());
        assert!(!r.scale(c64(f64::NAN, 0.0)).is_real());
        assert!((&r + &r).is_real());
        assert!(!(&r + &z).is_real());
        assert!(r.submatrix(1, 1, 2, 2).is_real());
        assert!(r.hstack(&r).unwrap().is_real());
        assert!(!r.vstack(&z).unwrap().is_real());
    }

    #[test]
    fn realness_hint_drops_on_raw_mutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = Matrix::random_real(3, 3, &mut rng);
        assert!(m.is_real());
        m[(0, 0)] = c64(1.0, 0.0); // even a real write through IndexMut drops it
        assert!(!m.is_real());
        assert!(m.mark_real_if_exact());
        let _ = m.data_mut();
        assert!(!m.is_real());
        m.assume_real();
        assert!(m.is_real());
        let _ = m.row_mut(1);
        assert!(!m.is_real());
        // set_col keeps the hint for a real column, drops it for a complex one.
        m.mark_real_if_exact();
        m.set_col(0, &[C64::ONE, C64::ZERO, C64::ONE]);
        assert!(m.is_real());
        m.set_col(1, &[C64::I, C64::ZERO, C64::ZERO]);
        assert!(!m.is_real());
        // project_real is the explicit recovery for mathematically-real data.
        m.project_real();
        assert!(m.is_real());
        assert!(m.data().iter().all(|v| v.im == 0.0));
    }

    /// Regression test for the scaled projection tolerance: a hardcoded eps
    /// either loses the hint on large-scale matrices (complex-Jacobi noise
    /// grows with the data) or falsely keeps it on small-scale ones. The
    /// tolerance must scale with `max_abs * n * EPSILON`.
    #[test]
    fn project_real_tolerance_scales_with_the_data() {
        // Large, ill-conditioned real matrix run through the complex Jacobi
        // eigendecomposition (hint laundered so the real path is bypassed):
        // the result is mathematically real but carries imaginary noise far
        // above any fixed 1e-14-style cutoff.
        let n = 24;
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            // Exponentially graded spectrum => ill-conditioned.
            h[(i, i)] = c64(1e8 * (0.5f64).powi(i as i32), 0.0);
            if i + 1 < n {
                h[(i, i + 1)] = c64(3e7, 0.0);
                h[(i + 1, i)] = c64(3e7, 0.0);
            }
        }
        assert!(!h.is_real(), "laundered: the complex eigh path must run");
        let e = crate::eig::eigh(&h).unwrap();
        let vf = crate::gemm::matmul(&e.vectors, &Matrix::from_diag_real(&e.values));
        let mut rec = crate::gemm::matmul_adj_b(&vf, &e.vectors);
        let worst_im = rec.data().iter().map(|z| z.im.abs()).fold(0.0, f64::max);
        assert!(worst_im > 1e-14, "expected Jacobi noise above a hardcoded eps, got {worst_im:e}");
        assert!(rec.project_real_if_negligible(), "scaled tolerance must accept Jacobi noise");
        assert!(rec.is_real());
        assert!(rec.approx_eq(&h, 1e-8 * h.norm_max()));

        // Small-scale matrix with imaginary parts that are *genuine* relative
        // to its entries: any eps above 1e-12 would falsely project; the
        // scaled tolerance (~1e-23 here) must refuse.
        let mut tiny = Matrix::zeros(2, 2);
        tiny[(0, 0)] = c64(1e-8, 1e-12);
        tiny[(1, 1)] = c64(-2e-8, 0.0);
        assert!(!tiny.project_real_if_negligible(), "genuinely complex data must be left alone");
        assert!(!tiny.is_real());
        assert_eq!(tiny[(0, 0)].im, 1e-12, "refused projection must not modify the data");
    }

    #[test]
    fn arithmetic_operators() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::random(3, 3, &mut rng);
        let b = Matrix::random(3, 3, &mut rng);
        let sum = &a + &b;
        let diff = &sum - &b;
        assert!(diff.approx_eq(&a, 1e-12));
        let mut c = a.clone();
        c += &b;
        assert!(c.approx_eq(&sum, 1e-12));
        c -= &b;
        assert!(c.approx_eq(&a, 1e-12));
        assert!((&(-&a) + &a).norm_max() < 1e-15);
    }
}
