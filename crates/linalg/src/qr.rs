//! Thin QR factorization of complex matrices.
//!
//! Uses modified Gram-Schmidt with one reorthogonalization pass ("twice is
//! enough"), which gives orthogonality at the level of machine precision for
//! the well-scaled matrices produced by tensor-network algorithms, and keeps
//! the implementation simple and easy to distribute (the Gram-matrix variant
//! in [`crate::gram`] / `koala-cluster` follows the paper's Algorithm 5).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::scalar::{c64, C64};

/// Result of a thin QR factorization `A = Q R` with `Q` of shape `(m, k)` and
/// `R` upper triangular of shape `(k, n)`, where `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Matrix with orthonormal columns.
    pub q: Matrix,
    /// Upper-triangular factor.
    pub r: Matrix,
}

/// Thin QR via modified Gram-Schmidt with reorthogonalization.
///
/// Rank-deficient columns are replaced by deterministic unit vectors that are
/// orthogonalized against the basis built so far, and the corresponding
/// diagonal of `R` is set to zero, so `Q` always has exactly `min(m, n)`
/// orthonormal columns and `A = Q R` still holds.
///
/// Inputs carrying the structural [`Matrix::is_real`] hint run through a
/// real-only inner loop (`f64` projections, no imaginary lane ever touched)
/// and both factors come back carrying the hint, so downstream products stay
/// on the real GEMM kernel.
pub fn qr(a: &Matrix) -> QrFactors {
    if a.is_real() {
        return qr_real(a);
    }
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut q = Matrix::zeros(m, k);
    let mut r = Matrix::zeros(k, n);

    // Working copy of the columns we are orthogonalizing.
    let mut cols: Vec<Vec<C64>> = (0..n).map(|j| a.col(j)).collect();
    let scale = a.norm_max().max(1.0);
    let tol = scale * 1e-14;

    for j in 0..k {
        // Two passes of projection against the established basis.
        for _ in 0..2 {
            for i in 0..j {
                let qi = q.col(i);
                let proj: C64 = qi.iter().zip(cols[j].iter()).map(|(qe, ce)| qe.conj() * *ce).sum();
                // Both passes accumulate into R; the second pass adds the
                // small correction left over by the first.
                r[(i, j)] += proj;
                for (ce, qe) in cols[j].iter_mut().zip(qi.iter()) {
                    *ce -= *qe * proj;
                }
            }
        }
        let norm = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > tol {
            r[(j, j)] = c64(norm, 0.0);
            let inv = 1.0 / norm;
            let unit: Vec<C64> = cols[j].iter().map(|&z| z * inv).collect();
            q.set_col(j, &unit);
        } else {
            // Numerically zero column: extend the basis with a canonical
            // vector orthogonalized against what we have so far.
            r[(j, j)] = C64::ZERO;
            let mut v = vec![C64::ZERO; m];
            'seed: for seed in 0..m {
                v.iter_mut().for_each(|z| *z = C64::ZERO);
                v[seed] = C64::ONE;
                for _ in 0..2 {
                    for i in 0..j {
                        let qi = q.col(i);
                        let proj: C64 =
                            qi.iter().zip(v.iter()).map(|(qe, ce)| qe.conj() * *ce).sum();
                        for (ce, qe) in v.iter_mut().zip(qi.iter()) {
                            *ce -= *qe * proj;
                        }
                    }
                }
                let nv = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
                if nv > 0.5 {
                    let inv = 1.0 / nv;
                    v.iter_mut().for_each(|z| *z = *z * inv);
                    break 'seed;
                }
            }
            q.set_col(j, &v);
        }
    }

    // Remaining columns (n > m case): project onto the finished basis.
    for j in k..n {
        for i in 0..k {
            let qi = q.col(i);
            let proj: C64 = qi.iter().zip(cols[j].iter()).map(|(qe, ce)| qe.conj() * *ce).sum();
            r[(i, j)] = proj;
        }
    }

    QrFactors { q, r }
}

/// Real-only modified Gram-Schmidt: the same algorithm as the complex branch
/// of [`qr`], executed on the real parts alone (the hint guarantees the
/// imaginary parts are exactly zero). Roughly a quarter of the arithmetic and
/// half the memory traffic of running the complex loop over real data; the
/// outputs are exactly real by construction and carry the hint.
///
/// The property test `real_path_factorizations_match_complex_path_across_shape_classes` pins the two branches' agreement at 1e-12 — any tolerance, pivoting, or convergence change here must land in the complex branch too (and vice versa).
fn qr_real(a: &Matrix) -> QrFactors {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut q_cols: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut r = vec![0.0f64; k * n];

    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| (0..m).map(|i| a[(i, j)].re).collect()).collect();
    let scale = a.norm_max().max(1.0);
    let tol = scale * 1e-14;

    for j in 0..k {
        // Two passes of projection against the established basis.
        for _ in 0..2 {
            for i in 0..j {
                let qi = &q_cols[i];
                let proj: f64 = qi.iter().zip(cols[j].iter()).map(|(qe, ce)| qe * ce).sum();
                r[i * n + j] += proj;
                for (ce, qe) in cols[j].iter_mut().zip(qi.iter()) {
                    *ce -= *qe * proj;
                }
            }
        }
        let norm = cols[j].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > tol {
            r[j * n + j] = norm;
            let inv = 1.0 / norm;
            q_cols.push(cols[j].iter().map(|&x| x * inv).collect());
        } else {
            // Numerically zero column: extend the basis with a canonical
            // vector orthogonalized against what we have so far.
            let mut v = vec![0.0f64; m];
            'seed: for seed in 0..m {
                v.iter_mut().for_each(|x| *x = 0.0);
                v[seed] = 1.0;
                for _ in 0..2 {
                    for qi in q_cols.iter() {
                        let proj: f64 = qi.iter().zip(v.iter()).map(|(qe, ce)| qe * ce).sum();
                        for (ce, qe) in v.iter_mut().zip(qi.iter()) {
                            *ce -= *qe * proj;
                        }
                    }
                }
                let nv = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if nv > 0.5 {
                    let inv = 1.0 / nv;
                    v.iter_mut().for_each(|x| *x *= inv);
                    break 'seed;
                }
            }
            q_cols.push(v);
        }
    }

    // Remaining columns (n > m case): project onto the finished basis.
    for j in k..n {
        for (i, qi) in q_cols.iter().enumerate() {
            r[i * n + j] = qi.iter().zip(cols[j].iter()).map(|(qe, ce)| qe * ce).sum();
        }
    }

    let mut q_data = vec![0.0f64; m * k];
    for (j, col) in q_cols.iter().enumerate() {
        for (i, &x) in col.iter().enumerate() {
            q_data[i * k + j] = x;
        }
    }
    let q = Matrix::from_real(m, k, &q_data)
        .unwrap_or_else(|_| unreachable!("qr_real: Q buffer is sized m*k by construction"));
    let r = Matrix::from_real(k, n, &r)
        .unwrap_or_else(|_| unreachable!("qr_real: R buffer is sized k*n by construction"));
    QrFactors { q, r }
}

/// Orthonormalize the columns of `a`, returning only the `Q` factor.
pub fn orthonormalize(a: &Matrix) -> Matrix {
    qr(a).q
}

/// QR of a square matrix with an invertibility check on `R`.
pub fn qr_square_invertible(a: &Matrix) -> Result<QrFactors> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { nrows: m, ncols: n });
    }
    let f = qr(a);
    for i in 0..n {
        if f.r[(i, i)].abs() < 1e-13 * a.norm_max().max(1.0) {
            return Err(LinalgError::Singular);
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_qr(a: &Matrix, tol: f64) {
        let QrFactors { q, r } = qr(a);
        let (m, n) = a.shape();
        let k = m.min(n);
        assert_eq!(q.shape(), (m, k));
        assert_eq!(r.shape(), (k, n));
        assert!(q.has_orthonormal_cols(tol), "Q columns not orthonormal");
        assert!(matmul(&q, &r).approx_eq(a, tol * a.norm_max().max(1.0)), "QR != A");
        // R upper triangular
        for i in 0..k {
            for j in 0..i.min(n) {
                assert!(r[(i, j)].abs() < tol);
            }
        }
    }

    #[test]
    fn tall_matrix() {
        let mut rng = StdRng::seed_from_u64(20);
        check_qr(&Matrix::random(20, 5, &mut rng), 1e-11);
    }

    #[test]
    fn square_matrix() {
        let mut rng = StdRng::seed_from_u64(21);
        check_qr(&Matrix::random(8, 8, &mut rng), 1e-11);
    }

    #[test]
    fn wide_matrix() {
        let mut rng = StdRng::seed_from_u64(22);
        check_qr(&Matrix::random(4, 9, &mut rng), 1e-11);
    }

    #[test]
    fn rank_deficient_matrix() {
        let mut rng = StdRng::seed_from_u64(23);
        let b = Matrix::random(10, 2, &mut rng);
        let c = Matrix::random(2, 6, &mut rng);
        let a = matmul(&b, &c); // rank <= 2 but 10x6
        let QrFactors { q, r } = qr(&a);
        assert!(q.has_orthonormal_cols(1e-10));
        assert!(matmul(&q, &r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 3);
        let QrFactors { q, r } = qr(&a);
        assert!(q.has_orthonormal_cols(1e-12));
        assert!(r.norm_max() < 1e-14);
    }

    #[test]
    fn identity_input() {
        let a = Matrix::identity(4);
        let QrFactors { q, r } = qr(&a);
        assert!(q.approx_eq(&Matrix::identity(4), 1e-14));
        assert!(r.approx_eq(&Matrix::identity(4), 1e-14));
    }

    #[test]
    fn square_invertible_check() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = Matrix::random(6, 6, &mut rng);
        assert!(qr_square_invertible(&a).is_ok());
        assert!(matches!(qr_square_invertible(&Matrix::zeros(3, 3)), Err(LinalgError::Singular)));
        assert!(matches!(
            qr_square_invertible(&Matrix::zeros(3, 4)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn orthonormalize_is_projection_of_qr() {
        let mut rng = StdRng::seed_from_u64(25);
        let a = Matrix::random(12, 4, &mut rng);
        let q = orthonormalize(&a);
        assert!(q.has_orthonormal_cols(1e-11));
        // Column spaces agree: Q Q^H A == A.
        let proj = matmul(&q, &crate::gemm::matmul_adj_a(&q, &a));
        assert!(proj.approx_eq(&a, 1e-10));
    }
}
