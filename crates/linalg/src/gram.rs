//! Reshape-avoiding orthogonalization via a Gram matrix (paper Algorithm 5).
//!
//! Given a tall operator `A : C^n -> C^m` (m >> n), form the small Gram matrix
//! `G = A^H A`, eigendecompose it locally, and recover
//! `R = sqrt(Lambda) X^H` and `Q = A R^{-1}` so that `A = Q R` with `Q`
//! having orthonormal columns. In the distributed setting the only operations
//! on the big operand are a contraction (to form `G`) and a contraction (to
//! apply `R^{-1}`) — no matricization/redistribution of `A` is ever needed.
//! This module provides the shared local math; `koala-cluster` wires it to
//! distributed tensors and `koala-peps` uses it for the `local-gram-qr`
//! evolution variants benchmarked in Figure 7.

use crate::eig::eigh;
use crate::error::Result;
use crate::gemm::{matmul, matmul_adj_a};
use crate::matrix::Matrix;
use crate::scalar::c64;

/// Result of the Gram-based orthogonalization.
#[derive(Debug, Clone)]
pub struct GramQr {
    /// Isometric factor with orthonormal columns (up to the numerical rank).
    pub q: Matrix,
    /// Square factor such that `A = Q R`.
    pub r: Matrix,
    /// `R^{-1}` (pseudo-inverse on the numerical null space).
    pub r_inv: Matrix,
}

/// Factor `A = Q R` through the Gram matrix `G = A^H A` (Algorithm 5).
///
/// Directions of `G` whose eigenvalue is below `rel_tol^2 * lambda_max` are
/// treated as numerically null: the corresponding rows of `R` are kept (so the
/// reconstruction `Q R ≈ A` still holds to round-off) but their contribution
/// to `R^{-1}` is zeroed, exactly like a pseudo-inverse.
pub fn gram_qr(a: &Matrix) -> Result<GramQr> {
    gram_qr_with_tol(a, 1e-12)
}

/// [`gram_qr`] with an explicit relative rank tolerance.
pub fn gram_qr_with_tol(a: &Matrix, rel_tol: f64) -> Result<GramQr> {
    let g = matmul_adj_a(a, a);
    let e = eigh(&g)?;
    let lam_max = e.values.iter().cloned().fold(0.0, f64::max).max(0.0);
    let (r, r_inv) = gram_r_factors(&e, lam_max * rel_tol * rel_tol);
    let q = matmul(a, &r_inv);
    Ok(GramQr { q, r, r_inv })
}

/// Assemble `R = sqrt(Lambda) X^H` and `R^{-1} = X sqrt(Lambda)^{-1}` from an
/// eigendecomposition of the Gram matrix `A^H A`, in descending eigenvalue
/// order. The scaled adjoint is written element-wise into its destination —
/// no `X` / `X^H` intermediate is materialised. Eigenvalues at or below
/// `cutoff` (or non-positive) contribute zero columns to `R^{-1}`, exactly
/// like a pseudo-inverse.
///
/// Shared by [`gram_qr_with_tol`] and the distributed `gram_qr_dist` of
/// `koala-cluster`, which replicate the same small assembly on every rank.
pub fn gram_r_factors(e: &crate::eig::EigH, cutoff: f64) -> (Matrix, Matrix) {
    let n = e.values.len();
    let mut r = Matrix::zeros(n, n);
    let mut r_inv = Matrix::zeros(n, n);
    for (newcol, oldcol) in (0..n).rev().enumerate() {
        let lam = e.values[oldcol].max(0.0);
        let sqrt_lam = lam.sqrt();
        let inv_sqrt = if lam > cutoff && lam > 0.0 { 1.0 / sqrt_lam } else { 0.0 };
        for i in 0..n {
            let x_i = e.vectors[(i, oldcol)];
            r[(newcol, i)] = x_i.conj().scale(sqrt_lam);
            r_inv[(i, newcol)] = x_i.scale(inv_sqrt);
        }
    }
    if e.vectors.is_real() {
        // Real eigenvectors scaled by finite reals stay real; the element-wise
        // assembly through IndexMut dropped the hint conservatively. This is
        // what keeps `Q = A R^{-1}` (and every later contraction against the
        // factors) on the real GEMM kernel for real inputs.
        r.assume_real();
        r_inv.assume_real();
    }
    (r, r_inv)
}

/// Orthogonalization through the Gram matrix, discarding `R` (used when only
/// an orthonormal basis of the column space is needed, e.g. inside the
/// randomized SVD when run on the distributed backend).
pub fn gram_orthonormalize(a: &Matrix) -> Result<Matrix> {
    Ok(gram_qr(a)?.q)
}

/// Symmetric (principal) square root of a Hermitian positive semi-definite
/// matrix, used by tests and by the MPS canonicalization.
pub fn sqrtm_psd(a: &Matrix) -> Result<Matrix> {
    crate::eig::funm_hermitian(a, |lam| c64(lam.max(0.0).sqrt(), 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_and_orthogonalizes_tall_matrix() {
        let mut rng = StdRng::seed_from_u64(80);
        let a = Matrix::random(50, 6, &mut rng);
        let f = gram_qr(&a).unwrap();
        assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-9));
        assert!(f.q.has_orthonormal_cols(1e-8));
    }

    #[test]
    fn r_inverse_is_consistent() {
        let mut rng = StdRng::seed_from_u64(81);
        let a = Matrix::random(30, 5, &mut rng);
        let f = gram_qr(&a).unwrap();
        assert!(matmul(&f.r, &f.r_inv).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn agrees_with_mgs_qr_up_to_unitary_freedom() {
        let mut rng = StdRng::seed_from_u64(82);
        let a = Matrix::random(40, 4, &mut rng);
        let g = gram_qr(&a).unwrap();
        let m = crate::qr::qr(&a);
        // Column spaces must agree: projectors are equal.
        let p1 = crate::gemm::matmul_adj_b(&g.q, &g.q);
        let p2 = crate::gemm::matmul_adj_b(&m.q, &m.q);
        assert!(p1.approx_eq(&p2, 1e-8));
    }

    #[test]
    fn rank_deficient_input_gets_pseudo_inverse() {
        let mut rng = StdRng::seed_from_u64(83);
        let b = Matrix::random(20, 2, &mut rng);
        let c = Matrix::random(2, 5, &mut rng);
        let a = matmul(&b, &c); // rank 2, 20x5
        let f = gram_qr(&a).unwrap();
        assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-8));
        // Q has exactly rank-2 worth of orthonormal columns; Q^H Q is a projector.
        let qhq = matmul_adj_a(&f.q, &f.q);
        let p2 = matmul(&qhq, &qhq);
        assert!(p2.approx_eq(&qhq, 1e-7));
        assert!((qhq.trace().re - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sqrtm_squares_back() {
        let mut rng = StdRng::seed_from_u64(84);
        let b = Matrix::random(6, 6, &mut rng);
        let a = matmul_adj_a(&b, &b); // PSD
        let s = sqrtm_psd(&a).unwrap();
        assert!(matmul(&s, &s).approx_eq(&a, 1e-8));
    }
}
