//! Reshape-avoiding orthogonalization via a Gram matrix (paper Algorithm 5).
//!
//! Given a tall operator `A : C^n -> C^m` (m >> n), form the small Gram matrix
//! `G = A^H A`, eigendecompose it locally, and recover
//! `R = sqrt(Lambda) X^H` and `Q = A R^{-1}` so that `A = Q R` with `Q`
//! having orthonormal columns. In the distributed setting the only operations
//! on the big operand are a contraction (to form `G`) and a contraction (to
//! apply `R^{-1}`) — no matricization/redistribution of `A` is ever needed.
//! This module provides the shared local math; `koala-cluster` wires it to
//! distributed tensors and `koala-peps` uses it for the `local-gram-qr`
//! evolution variants benchmarked in Figure 7.

use crate::eig::eigh;
use crate::error::Result;
use crate::gemm::{gemm, matmul, matmul_adj_a, Op};
use crate::matrix::Matrix;
use crate::scalar::c64;
use crate::svd::{scale_cols, svd};

/// Result of the Gram-based orthogonalization.
#[derive(Debug, Clone)]
pub struct GramQr {
    /// Isometric factor with orthonormal columns (up to the numerical rank).
    pub q: Matrix,
    /// Square factor such that `A = Q R`.
    pub r: Matrix,
    /// `R^{-1}` (pseudo-inverse on the numerical null space).
    pub r_inv: Matrix,
}

/// Factor `A = Q R` through the Gram matrix `G = A^H A` (Algorithm 5).
///
/// Directions of `G` whose eigenvalue is below `rel_tol^2 * lambda_max` are
/// treated as numerically null: the corresponding rows of `R` are kept (so the
/// reconstruction `Q R ≈ A` still holds to round-off) but their contribution
/// to `R^{-1}` is zeroed, exactly like a pseudo-inverse.
pub fn gram_qr(a: &Matrix) -> Result<GramQr> {
    gram_qr_with_tol(a, 1e-12)
}

/// Relative eigenvalue floor below which the Gram matrix is considered to
/// have lost positive semi-definiteness. Round-off on a legitimate
/// rank-deficient input produces negative eigenvalues at the `-eps * lam_max`
/// level (~1e-14 relative); anything past this floor signals the squared
/// condition number has genuinely destroyed the Gram spectrum — the exact
/// instability the paper trades QR+SVD against Gram-based factorization for.
const GRAM_PSD_FLOOR: f64 = 1e-10;

/// [`gram_qr`] with an explicit relative rank tolerance.
///
/// Ill-conditioning is detected, not suffered: if the eigendecomposition of
/// `G = A^H A` fails, produces non-finite values, or shows an eigenvalue
/// below `-GRAM_PSD_FLOOR * lambda_max` (loss of positive semi-definiteness),
/// the routine degrades to a conventional QR+SVD factorization — numerically
/// stable at roughly twice the big-operand cost — and records the degradation
/// on the [`koala_error::recovery`] counters. Non-finite *inputs* are
/// rejected up front instead of degraded: no factorization can repair them.
pub fn gram_qr_with_tol(a: &Matrix, rel_tol: f64) -> Result<GramQr> {
    a.validate_finite("gram_qr input")?;
    let g = matmul_adj_a(a, a);
    let healthy = if g.validate_finite("gram matrix").is_err() {
        None
    } else {
        match eigh(&g) {
            Ok(e) => {
                let lam_max = e.values.iter().cloned().fold(0.0, f64::max).max(0.0);
                let lam_min = e.values.first().copied().unwrap_or(0.0); // ascending order
                let finite = e.values.iter().all(|lam| lam.is_finite());
                if finite && lam_min >= -GRAM_PSD_FLOOR * lam_max.max(f64::MIN_POSITIVE) {
                    Some((e, lam_max))
                } else {
                    None
                }
            }
            Err(_) => None,
        }
    };
    let Some((e, lam_max)) = healthy else {
        koala_error::recovery::note_qr_degradation();
        return qr_svd_degrade(a, rel_tol);
    };
    let (r, r_inv) = gram_r_factors(&e, lam_max * rel_tol * rel_tol);
    let q = matmul(a, &r_inv);
    q.validate_finite("gram_qr Q factor")?;
    Ok(GramQr { q, r, r_inv })
}

/// Stable fallback for [`gram_qr_with_tol`]: conventional QR of the big
/// operand, with `R^{-1}` recovered as a pseudo-inverse through the SVD of
/// the small square `R` (so rank-deficient directions are zeroed exactly
/// like the Gram path would).
fn qr_svd_degrade(a: &Matrix, rel_tol: f64) -> Result<GramQr> {
    let f = crate::qr::qr(a);
    let sv = svd(&f.r)?;
    let smax = sv.s.first().copied().unwrap_or(0.0);
    let pinv_s: Vec<f64> =
        sv.s.iter().map(|&x| if x > smax * rel_tol && x > 0.0 { 1.0 / x } else { 0.0 }).collect();
    // pinv(R) = V S^+ U^H, assembled through the fused-adjoint GEMM as
    // (V^H)^H * (U S^+)^H — no factor adjoint is materialised.
    let us = scale_cols(&sv.u, &pinv_s);
    let r_inv = gemm(Op::Adjoint, Op::Adjoint, &sv.vh, &us);
    let q = f.q;
    q.validate_finite("qr_svd_degrade Q factor")?;
    Ok(GramQr { q, r: f.r, r_inv })
}

/// Assemble `R = sqrt(Lambda) X^H` and `R^{-1} = X sqrt(Lambda)^{-1}` from an
/// eigendecomposition of the Gram matrix `A^H A`, in descending eigenvalue
/// order. The scaled adjoint is written element-wise into its destination —
/// no `X` / `X^H` intermediate is materialised. Eigenvalues at or below
/// `cutoff` (or non-positive) contribute zero columns to `R^{-1}`, exactly
/// like a pseudo-inverse.
///
/// Shared by [`gram_qr_with_tol`] and the distributed `gram_qr_dist` of
/// `koala-cluster`, which replicate the same small assembly on every rank.
pub fn gram_r_factors(e: &crate::eig::EigH, cutoff: f64) -> (Matrix, Matrix) {
    let n = e.values.len();
    let mut r = Matrix::zeros(n, n);
    let mut r_inv = Matrix::zeros(n, n);
    for (newcol, oldcol) in (0..n).rev().enumerate() {
        let lam = e.values[oldcol].max(0.0);
        let sqrt_lam = lam.sqrt();
        let inv_sqrt = if lam > cutoff && lam > 0.0 { 1.0 / sqrt_lam } else { 0.0 };
        for i in 0..n {
            let x_i = e.vectors[(i, oldcol)];
            r[(newcol, i)] = x_i.conj().scale(sqrt_lam);
            r_inv[(i, newcol)] = x_i.scale(inv_sqrt);
        }
    }
    if e.vectors.is_real() {
        // Real eigenvectors scaled by finite reals stay real; the element-wise
        // assembly through IndexMut dropped the hint conservatively. This is
        // what keeps `Q = A R^{-1}` (and every later contraction against the
        // factors) on the real GEMM kernel for real inputs.
        r.assume_real();
        r_inv.assume_real();
    }
    (r, r_inv)
}

/// Orthogonalization through the Gram matrix, discarding `R` (used when only
/// an orthonormal basis of the column space is needed, e.g. inside the
/// randomized SVD when run on the distributed backend).
pub fn gram_orthonormalize(a: &Matrix) -> Result<Matrix> {
    Ok(gram_qr(a)?.q)
}

/// Symmetric (principal) square root of a Hermitian positive semi-definite
/// matrix, used by tests and by the MPS canonicalization.
pub fn sqrtm_psd(a: &Matrix) -> Result<Matrix> {
    crate::eig::funm_hermitian(a, |lam| c64(lam.max(0.0).sqrt(), 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_and_orthogonalizes_tall_matrix() {
        let mut rng = StdRng::seed_from_u64(80);
        let a = Matrix::random(50, 6, &mut rng);
        let f = gram_qr(&a).unwrap();
        assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-9));
        assert!(f.q.has_orthonormal_cols(1e-8));
    }

    #[test]
    fn r_inverse_is_consistent() {
        let mut rng = StdRng::seed_from_u64(81);
        let a = Matrix::random(30, 5, &mut rng);
        let f = gram_qr(&a).unwrap();
        assert!(matmul(&f.r, &f.r_inv).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn agrees_with_mgs_qr_up_to_unitary_freedom() {
        let mut rng = StdRng::seed_from_u64(82);
        let a = Matrix::random(40, 4, &mut rng);
        let g = gram_qr(&a).unwrap();
        let m = crate::qr::qr(&a);
        // Column spaces must agree: projectors are equal.
        let p1 = crate::gemm::matmul_adj_b(&g.q, &g.q);
        let p2 = crate::gemm::matmul_adj_b(&m.q, &m.q);
        assert!(p1.approx_eq(&p2, 1e-8));
    }

    #[test]
    fn rank_deficient_input_gets_pseudo_inverse() {
        let mut rng = StdRng::seed_from_u64(83);
        let b = Matrix::random(20, 2, &mut rng);
        let c = Matrix::random(2, 5, &mut rng);
        let a = matmul(&b, &c); // rank 2, 20x5
        let f = gram_qr(&a).unwrap();
        assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-8));
        // Q has exactly rank-2 worth of orthonormal columns; Q^H Q is a projector.
        let qhq = matmul_adj_a(&f.q, &f.q);
        let p2 = matmul(&qhq, &qhq);
        assert!(p2.approx_eq(&qhq, 1e-7));
        assert!((qhq.trace().re - 2.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_input_is_rejected() {
        let mut a = Matrix::zeros(4, 2);
        a[(3, 1)] = crate::scalar::c64(f64::INFINITY, 0.0);
        assert!(matches!(gram_qr(&a), Err(crate::error::LinalgError::NonFinite { .. })));
    }

    #[test]
    fn qr_svd_degrade_reconstructs_and_pseudo_inverts() {
        let mut rng = StdRng::seed_from_u64(85);
        // Full-rank tall input.
        let a = Matrix::random(25, 4, &mut rng);
        let f = super::qr_svd_degrade(&a, 1e-12).unwrap();
        assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-9));
        assert!(f.q.has_orthonormal_cols(1e-8));
        assert!(matmul(&f.r, &f.r_inv).approx_eq(&Matrix::identity(4), 1e-8));
        // Rank-deficient input: R^{-1} acts as a pseudo-inverse, exactly like
        // the Gram path ([`rank_deficient_input_gets_pseudo_inverse`]).
        let b = matmul(&Matrix::random(20, 2, &mut rng), &Matrix::random(2, 5, &mut rng));
        let f = super::qr_svd_degrade(&b, 1e-10).unwrap();
        assert!(matmul(&f.q, &f.r).approx_eq(&b, 1e-8));
        let pinv = matmul(&f.r_inv, &f.r);
        // R^{-1} R is a rank-2 projector in R's row space.
        assert!(matmul(&pinv, &pinv).approx_eq(&pinv, 1e-7));
        // Realness propagates through the degrade path.
        let c = Matrix::random_real(15, 3, &mut rng);
        let f = super::qr_svd_degrade(&c, 1e-12).unwrap();
        assert!(f.q.is_real() && f.r_inv.is_real());
        assert!(matmul(&f.q, &f.r).approx_eq(&c, 1e-9));
    }

    #[test]
    fn sqrtm_squares_back() {
        let mut rng = StdRng::seed_from_u64(84);
        let b = Matrix::random(6, 6, &mut rng);
        let a = matmul_adj_a(&b, &b); // PSD
        let s = sqrtm_psd(&a).unwrap();
        assert!(matmul(&s, &s).approx_eq(&a, 1e-8));
    }
}
