//! Blocked, multi-threaded complex matrix multiplication.
//!
//! This is the hot kernel of the whole stack: every tensor contraction in
//! `koala-tensor` maps to a single GEMM after index permutation, and the
//! paper's evaluation reports that 60-70% of contraction time is spent in
//! GEMM. The implementation tiles the operands for cache reuse and
//! parallelises over row blocks of the output with Rayon, which mirrors the
//! threaded NumPy/MKL backend of the original Koala library.

use crate::matrix::Matrix;
use crate::scalar::C64;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-blocking tile along the shared (k) dimension.
const KC: usize = 128;
/// Cache-blocking tile along output columns.
const NC: usize = 128;
/// Rows of C handled per parallel task.
const MC: usize = 64;
/// Below this many scalar multiply-adds the parallel path is not worth it.
const PAR_THRESHOLD: usize = 32 * 32 * 32;

/// Global count of complex multiply-add operations executed by GEMM.
///
/// The weak-scaling experiment (Figure 12) reports useful flop rate per core;
/// this counter provides the "useful flops" numerator without instrumenting
/// call sites.
static FLOP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Reset the global GEMM flop counter and return its previous value.
pub fn reset_flop_counter() -> u64 {
    FLOP_COUNTER.swap(0, Ordering::Relaxed)
}

/// Read the global GEMM flop counter (counted as complex multiply-adds, i.e.
/// 8 real flops each).
pub fn flop_counter() -> u64 {
    FLOP_COUNTER.load(Ordering::Relaxed)
}

/// How the left/right operand should be read by [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    None,
    /// Use the conjugate transpose of the operand.
    Adjoint,
    /// Use the (non-conjugated) transpose of the operand.
    Transpose,
}

/// C = A * B.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(Op::None, Op::None, a, b)
}

/// C = A^H * B.
pub fn matmul_adj_a(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(Op::Adjoint, Op::None, a, b)
}

/// C = A * B^H.
pub fn matmul_adj_b(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(Op::None, Op::Adjoint, a, b)
}

/// General complex matrix product with optional (conjugate) transposition of
/// either operand. Operands are materialised into plain row-major form first;
/// the transposition cost is negligible next to the O(mnk) multiply.
pub fn gemm(opa: Op, opb: Op, a: &Matrix, b: &Matrix) -> Matrix {
    let a_eff;
    let a = match opa {
        Op::None => a,
        Op::Adjoint => {
            a_eff = a.adjoint();
            &a_eff
        }
        Op::Transpose => {
            a_eff = a.transpose();
            &a_eff
        }
    };
    let b_eff;
    let b = match opb {
        Op::None => b,
        Op::Adjoint => {
            b_eff = b.adjoint();
            &b_eff
        }
        Op::Transpose => {
            b_eff = b.transpose();
            &b_eff
        }
    };
    matmul_plain(a, b)
}

/// C = A * B for plain row-major operands.
fn matmul_plain(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "gemm: inner dimensions do not match ({m}x{ka} * {kb}x{n})");
    let k = ka;
    FLOP_COUNTER.fetch_add((m * n * k) as u64, Ordering::Relaxed);

    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }

    let a_data = a.data();
    let b_data = b.data();
    let work = m * n * k;

    if work < PAR_THRESHOLD {
        let c_data = c.data_mut();
        gemm_block(a_data, b_data, c_data, 0, m, k, n);
        return c;
    }

    // Parallelise over disjoint row blocks of C. Each task owns a contiguous
    // slice of the output so no synchronisation is needed.
    let c_data = c.data_mut();
    c_data
        .par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(blk, c_chunk)| {
            let i0 = blk * MC;
            let rows = (m - i0).min(MC);
            gemm_block(a_data, b_data, c_chunk, i0, rows, k, n);
        });
    c
}

/// Multiply `rows` rows of A (starting at global row `i0`) into the output
/// chunk `c_chunk` (which holds exactly those rows of C). Uses k/n tiling so
/// the active panel of B stays in cache.
fn gemm_block(a: &[C64], b: &[C64], c_chunk: &mut [C64], i0: usize, rows: usize, k: usize, n: usize) {
    for kk in (0..k).step_by(KC) {
        let kmax = (kk + KC).min(k);
        for jj in (0..n).step_by(NC) {
            let jmax = (jj + NC).min(n);
            for i in 0..rows {
                let a_row = &a[(i0 + i) * k..(i0 + i) * k + k];
                let c_row = &mut c_chunk[i * n..(i + 1) * n];
                for p in kk..kmax {
                    let aip = a_row[p];
                    if aip.re == 0.0 && aip.im == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..p * n + n];
                    for j in jj..jmax {
                        c_row[j] = c_row[j].mul_add(aip, b_row[j]);
                    }
                }
            }
        }
    }
}

/// Naive triple-loop reference implementation (used by tests and kept public
/// so property tests in dependent crates can cross-check the fast path).
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_naive: inner dimensions do not match");
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = C64::ZERO;
            for p in 0..k {
                acc = acc.mul_add(a[(i, p)], b[(p, j)]);
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Matrix::random(7, 5, &mut rng);
        assert!(matmul(&Matrix::identity(7), &a).approx_eq(&a, 1e-13));
        assert!(matmul(&a, &Matrix::identity(5)).approx_eq(&a, 1e-13));
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 2, 9), (13, 17, 3)] {
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), 1e-11));
        }
    }

    #[test]
    fn matches_naive_large_parallel_path() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Matrix::random(70, 90, &mut rng);
        let b = Matrix::random(90, 65, &mut rng);
        assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), 1e-9));
    }

    #[test]
    fn adjoint_variants() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Matrix::random(6, 4, &mut rng);
        let b = Matrix::random(6, 5, &mut rng);
        let c1 = matmul_adj_a(&a, &b);
        let c2 = matmul(&a.adjoint(), &b);
        assert!(c1.approx_eq(&c2, 1e-12));

        let d = Matrix::random(3, 4, &mut rng);
        let e = Matrix::random(5, 4, &mut rng);
        let f1 = matmul_adj_b(&d, &e);
        let f2 = matmul(&d, &e.adjoint());
        assert!(f1.approx_eq(&f2, 1e-12));

        let g1 = gemm(Op::Transpose, Op::None, &a, &a.conj());
        let g2 = matmul(&a.transpose(), &a.conj());
        assert!(g1.approx_eq(&g2, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dimension_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(matmul(&a, &b).shape(), (0, 2));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.norm_max() == 0.0);
    }

    #[test]
    fn flop_counter_tracks_work() {
        reset_flop_counter();
        let a = Matrix::full(8, 4, c64(1.0, 0.0));
        let b = Matrix::full(4, 6, c64(1.0, 0.0));
        let _ = matmul(&a, &b);
        assert_eq!(flop_counter(), (8 * 4 * 6) as u64);
        reset_flop_counter();
    }

    #[test]
    fn associativity_with_random_matrices() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = Matrix::random(4, 5, &mut rng);
        let b = Matrix::random(5, 6, &mut rng);
        let c = Matrix::random(6, 3, &mut rng);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.approx_eq(&right, 1e-10));
    }
}
