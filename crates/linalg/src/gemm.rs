//! Packed, blocked, multi-threaded complex matrix multiplication.
//!
//! This is the hot kernel of the whole stack: every tensor contraction in
//! `koala-tensor` maps to a single GEMM after index permutation, and the
//! paper's evaluation reports that 60-70% of contraction time is spent in
//! GEMM.
//!
//! # Algorithm
//!
//! The implementation follows the BLIS decomposition:
//!
//! ```text
//! for jc in 0..n step NC            # C column blocks        (parallel)
//!   for ic in 0..m step MC          # C row blocks           (parallel)
//!     for pc in 0..k step KC        # depth blocks           (sequential)
//!       pack B[pc..pc+KC, jc..jc+NC] into NR-column strips   (pack.rs)
//!       pack A[ic..ic+MC, pc..pc+KC] into MR-row strips      (pack.rs)
//!       for jr, ir over the strips:
//!         microkernel: MR x NR register tile += A-strip * B-strip
//! ```
//!
//! * **Packing** ([`crate::pack`]) rearranges each cache block into
//!   *split-complex* panels — per depth index, `MR`/`NR` real parts followed
//!   by the imaginary parts — so the microkernel's inner loops are pure
//!   `f64` lane arithmetic that auto-vectorizes to `f64x4`/`f64x8` FMA
//!   sequences ([`crate::microkernel`]).
//! * **Transposition is fused into packing.** [`Op::Adjoint`] and
//!   [`Op::Transpose`] only change the gather stride (and conjugation sign)
//!   used while packing; no transposed copy of an operand is ever
//!   materialised.
//! * **Parallelism is a task graph.** Above `PAR_THRESHOLD` (64³ MACs) the
//!   product
//!   is lowered onto the `koala-exec` work-stealing executor: one `Pack`
//!   task per `(row-block, depth-block)` A panel and per `(column-block,
//!   depth-block)` B panel, and one `Gemm` task per `(MC, NC, KC)`
//!   macro-tile step depending on its two pack tasks and its own previous
//!   depth step. Packed panels are therefore **shared** across every tile
//!   in their row/column (packed exactly once per block, not once per
//!   tile), and the depth-dependency chain fixes each C element's
//!   accumulation order to the serial order — results are bit-identical
//!   across thread counts by construction. Tall-skinny and short-wide
//!   shapes still expose parallelism along whichever output dimension is
//!   large, because tasks tile C in 2-D.
//!
//! # Blocking parameters
//!
//! `MR x NR = 6 x 8` register tile (split re/im accumulators = 12 AVX-512
//! registers, leaving room for operand broadcasts); `KC = 256` sizes one
//! packed A strip at 24 KiB and one packed B strip at 32 KiB (L1/L2
//! resident); `MC = 192` sizes the packed A block at 768 KiB for L2;
//! `NC = 512` sizes the packed B block at 2 MiB for L3. Parameters were
//! tuned empirically on an AVX-512 Xeon with `bench_gemm` (the sweep is
//! cheap to re-run if the deployment target changes).
//!
//! # Real-valued fast path
//!
//! The paper's headline workloads (TFI imaginary-time evolution, ground-state
//! PEPS contraction) keep every tensor purely real, so burning the full
//! 8-real-flop complex MAC on operands with identically-zero imaginary planes
//! wastes three quarters of the arithmetic. Two mechanisms route such
//! products onto a real-only microkernel
//! ([`crate::microkernel::microkernel_real`], one FMA per lane per depth
//! step):
//!
//! * **Caller-asserted realness.** [`gemm`] inspects the structural
//!   [`Matrix::is_real`] hints; when both operands carry them it calls
//!   [`gemm_into_real`], which packs `f64`-only panels (half the packing
//!   traffic) consumed by a *wider* `8 x 16` register tile
//!   ([`crate::microkernel::microkernel_real_wide`] — the `6 x 8` complex
//!   tile is dictated by split re/im register pressure the real kernel does
//!   not have) under its own cache blocking (`MC_REAL = 256` vs `MC = 192`:
//!   the halved `f64`-only panels let the row block grow while the packed-A
//!   L2 footprint still *shrinks*, 512 KiB vs 768 KiB), and never touches an
//!   imaginary lane. The output is marked real.
//! * **Per-block detection.** The split-complex packers report whether every
//!   imaginary part in the gathered cache block was exactly zero; when both
//!   blocks of a depth step are real, the real microkernel runs over the real
//!   lanes of the already-packed split-complex panels. This catches real data
//!   whose hint was lost (e.g. buffers built through `from_vec`) at zero
//!   extra memory traffic.
//!
//! Neither path ever materialises a complex (or transposed) copy of a real
//! operand — `linalg/tests/alloc.rs` pins this with a counting allocator.
//!
//! # Flop accounting
//!
//! [`flop_counter`] counts **complex multiply-adds** (one `C += A * B`
//! update of complex scalars, 8 real flops: 4 mul + 4 add) executed by the
//! split-complex kernel; [`real_mac_counter`] counts **real multiply-adds**
//! (2 real flops) executed by the real-only kernel. Total hardware flops are
//! therefore `8 * flop_counter() + 2 * real_mac_counter()`, which is what
//! `bench_gemm` uses as its GFLOP/s numerator — so the recorded numbers stay
//! honest no matter which kernel dispatch picked. (The Figure 12
//! weak-scaling binary derives its rates from the cluster *cost model*, not
//! these runtime counters; only its 8-flops-per-complex-MAC convention is
//! shared.)
//!
//! Since the scoped work-accounting redesign the counters live on
//! [`koala_exec::meter::WorkMeter`] handles rather than private statics:
//! every billing site adds to the process-global meter (which these
//! functions read, so their numbers are unchanged) *and* to any
//! [`WorkMeter::scope`](koala_exec::meter::WorkMeter::scope) active on the
//! billing thread — scopes travel with executor tasks, which is what makes
//! per-tenant billing in `koala-serve` exact. The meter additionally tracks
//! **bytes** of GEMM interface traffic (operand reads + output writes, 16
//! bytes per complex element, billed once per product and therefore
//! identical at every thread count).

use crate::matrix::Matrix;
use crate::microkernel::{
    microkernel, microkernel_real, microkernel_real_wide, AccTile, RealAccTile, RealAccTileWide,
    MR, MR_REAL, NR, NR_REAL,
};
use crate::pack::{pack_a, pack_a_real, pack_b, pack_b_real};
use crate::scalar::C64;
use koala_exec::{meter, TaskGraph, TaskId, TaskKind};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Cache-blocking tile along the shared (k) dimension.
const KC: usize = 256;
/// Cache-blocking tile along output columns.
const NC: usize = 512;
/// Cache-blocking tile along output rows.
const MC: usize = 192;
/// Real-path cache blocking. The packed panels are `f64`-only (half the
/// footprint of split-complex: the complex packed-A block is
/// `MC * KC * 2 * 8 B = 768 KiB`), so a larger row block still shrinks the
/// L2 footprint (`MC_REAL * KC_REAL * 8 B = 512 KiB`); a packed B strip
/// (`KC_REAL * NR_REAL * 8 B = 32 KiB`) stays L1-resident.
const KC_REAL: usize = 256;
/// Real-path tile along output columns (multiple of `NR_REAL`).
const NC_REAL: usize = 512;
/// Real-path tile along output rows (multiple of `MR_REAL`).
const MC_REAL: usize = 256;
/// Below this many complex multiply-adds the parallel path is not worth it.
const PAR_THRESHOLD: usize = 64 * 64 * 64;
/// Combined packed-panel budget (bytes) for the shared-panel task-graph
/// schedule, which keeps *every* packed A and B panel resident at once
/// (roughly `16 * (m*k + k*n)` bytes complex, half that real). Products
/// whose panels would exceed it fall back to private per-tile packing —
/// still on the executor, just without cross-tile panel sharing.
const PANEL_MEM_LIMIT: usize = 256 << 20;

/// Reset the global work meter (complex MACs, real MACs, and bytes) and
/// return the previous complex-MAC count.
///
/// Only the process-global default scope is reset; active
/// [`WorkMeter`](koala_exec::meter::WorkMeter) scopes keep their subtotals.
pub fn reset_flop_counter() -> u64 {
    meter::WorkMeter::global().reset().complex_macs
}

/// Read the global GEMM flop counter (counted as complex multiply-adds, i.e.
/// 8 real flops each). MACs executed by the real-only kernel are counted
/// separately by [`real_mac_counter`]. This reads the process-global
/// [`WorkMeter`](koala_exec::meter::WorkMeter) — the default scope every
/// billing site always adds to.
pub fn flop_counter() -> u64 {
    meter::WorkMeter::global().complex_macs()
}

/// Read the global count of multiply-adds executed by the real-only kernel
/// (2 real flops each).
pub fn real_mac_counter() -> u64 {
    meter::WorkMeter::global().real_macs()
}

/// How the left/right operand should be read by [`gemm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    None,
    /// Use the conjugate transpose of the operand.
    Adjoint,
    /// Use the (non-conjugated) transpose of the operand.
    Transpose,
}

impl Op {
    /// Shape of the effective operand given the stored shape.
    #[inline]
    pub fn effective_shape(self, stored: (usize, usize)) -> (usize, usize) {
        match self {
            Op::None => stored,
            Op::Adjoint | Op::Transpose => (stored.1, stored.0),
        }
    }
}

/// C = A * B.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(Op::None, Op::None, a, b)
}

/// C = A^H * B.
pub fn matmul_adj_a(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(Op::Adjoint, Op::None, a, b)
}

/// C = A * B^H.
pub fn matmul_adj_b(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(Op::None, Op::Adjoint, a, b)
}

/// General complex matrix product with optional (conjugate) transposition of
/// either operand. Transposition and conjugation are fused into operand
/// packing — no copy of either operand is materialised.
///
/// When both operands carry the structural [`Matrix::is_real`] hint the
/// product is dispatched to the real-only kernel ([`gemm_into_real`]) and the
/// result is marked real.
pub fn gemm(opa: Op, opb: Op, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, ka) = opa.effective_shape(a.shape());
    let (kb, n) = opb.effective_shape(b.shape());
    assert_eq!(ka, kb, "gemm: inner dimensions do not match ({m}x{ka} * {kb}x{n})");
    let real = a.is_real() && b.is_real();
    let mut c = Matrix::zeros(m, n);
    if real {
        gemm_into_real(opa, opb, m, n, ka, a.data(), b.data(), c.data_mut());
        // The real path writes only real parts into the zeroed buffer.
        c.assume_real();
    } else {
        gemm_into(opa, opb, m, n, ka, a.data(), b.data(), c.data_mut());
    }
    c
}

/// Accumulate `op(A) * op(B)` into `c` (`c += ...`, i.e. BLAS `beta = 1`).
///
/// `a`/`b` are the row-major *stored* operands; `m x k` / `k x n` are the
/// *effective* shapes after applying `opa` / `opb`. This slice-level entry
/// point is what `koala-tensor` uses to contract tensors without going
/// through intermediate `Matrix` copies.
///
/// Cache blocks whose imaginary parts are detected to be identically zero
/// during packing are still executed by the real-only microkernel; callers
/// that can *assert* realness structurally should use [`gemm_into_real`],
/// which also halves the packing traffic.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    c: &mut [C64],
) {
    gemm_into_dispatch(opa, opb, m, n, k, a, b, c, false);
}

/// [`gemm_into`] for operands the caller guarantees are purely real (every
/// imaginary part exactly zero, `-0.0` included).
///
/// Packs `f64`-only panels and runs the real microkernel throughout — a
/// quarter of the FMAs and half the packing traffic of the split-complex
/// path; only real parts of `c` are updated. The guarantee is verified by a
/// full operand scan under `debug_assertions`; in release builds a wrong
/// claim silently drops imaginary contributions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_real(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    c: &mut [C64],
) {
    debug_assert!(
        a.iter().all(|z| z.im == 0.0),
        "gemm_into_real: left operand has nonzero imaginary parts"
    );
    debug_assert!(
        b.iter().all(|z| z.im == 0.0),
        "gemm_into_real: right operand has nonzero imaginary parts"
    );
    gemm_into_dispatch(opa, opb, m, n, k, a, b, c, true);
}

/// Shared blocked driver behind [`gemm_into`] / [`gemm_into_real`].
/// `assume_real` selects real-only packing; otherwise realness is detected
/// per cache block.
#[allow(clippy::too_many_arguments)]
fn gemm_into_dispatch(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    c: &mut [C64],
    assume_real: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_into: left operand length");
    assert_eq!(b.len(), k * n, "gemm_into: right operand length");
    assert_eq!(c.len(), m * n, "gemm_into: output length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Interface traffic of this product — operand reads plus output writes,
    // 16 bytes per complex element. Billed once per product (not per packed
    // panel), so the byte ledger is identical at every thread count.
    meter::add_bytes(((m * k + k * n + m * n) as u64) * 16);
    // Row stride of the *stored* operand.
    let lda = if opa == Op::None { k } else { m };
    let ldb = if opb == Op::None { n } else { k };

    // 2-D macro-tile decomposition of C (the real path has its own blocking;
    // see the constants above).
    let (mc_blk, nc_blk) = if assume_real { (MC_REAL, NC_REAL) } else { (MC, NC) };
    let tiles: Vec<(usize, usize)> = (0..m)
        .step_by(mc_blk)
        .flat_map(|ic| (0..n).step_by(nc_blk).map(move |jc| (ic, jc)))
        .collect();

    let work = m * n * k;
    let pool = koala_exec::pool();
    if work < PAR_THRESHOLD || tiles.len() == 1 || pool.threads() == 1 {
        for &(ic, jc) in &tiles {
            // Safety: exclusive access through the &mut borrow; serial loop.
            unsafe {
                if assume_real {
                    compute_tile_real(opa, opb, m, n, k, a, b, lda, ldb, c.as_mut_ptr(), ic, jc)
                } else {
                    compute_tile(opa, opb, m, n, k, a, b, lda, ldb, c.as_mut_ptr(), ic, jc)
                }
            };
        }
        return;
    }
    exec_gemm(&pool, opa, opb, m, n, k, a, b, lda, ldb, c, assume_real);
}

/// A `*mut C64` that task closures may capture. Safety rests on the graph
/// structure: every GEMM task writes a disjoint `(ic, jc)` macro-tile of C,
/// and the depth chain serialises the tasks that share a tile.
struct SendPtr(*mut C64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// One shared packed panel: written by exactly one pack task, read only by
/// GEMM tasks that declare that pack task as a dependency (the executor's
/// dependency edge provides the happens-before ordering).
struct PanelSlot {
    buf: UnsafeCell<Vec<f64>>,
    real: AtomicBool,
}
// Safety: see the field docs — the task graph gives each slot one writer,
// ordered before all of its readers.
unsafe impl Sync for PanelSlot {}

impl PanelSlot {
    fn new() -> Self {
        PanelSlot { buf: UnsafeCell::new(Vec::new()), real: AtomicBool::new(false) }
    }
}

fn run_graph(graph: TaskGraph<'_>, pool: &koala_exec::Pool) {
    if let Err(e) = graph.run_on(pool) {
        // GEMM tasks are infallible: the only way to get here is a panic
        // inside a task (an index/shape bug), which the executor caught and
        // typed. Re-raise it — the serial path would have panicked too.
        panic!("gemm task graph failed: {e}");
    }
}

/// The parallel schedule: a task graph with **shared packed panels**.
///
/// Per `(row-block, depth-block)` one `PackA` task and per `(column-block,
/// depth-block)` one `PackB` task write preallocated panel slots; the GEMM
/// macro-tile task `(ic, jc, pc)` depends on its two pack tasks *and on
/// `(ic, jc, pc-1)`* — the depth chain that fixes the accumulation order of
/// every C element to exactly the serial loop's order, which is what makes
/// results bit-identical across thread counts. Sharing means each B panel
/// is packed once per `(depth, column)` block instead of once per tile (the
/// old `threads > 1` waste), at the cost of keeping all panels resident —
/// bounded by [`PANEL_MEM_LIMIT`], beyond which tiles pack privately.
#[allow(clippy::too_many_arguments)]
fn exec_gemm(
    pool: &koala_exec::Pool,
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    lda: usize,
    ldb: usize,
    c: &mut [C64],
    assume_real: bool,
) {
    let (mc_blk, nc_blk, kc_blk) =
        if assume_real { (MC_REAL, NC_REAL, KC_REAL) } else { (MC, NC, KC) };
    let (mr, nr) = if assume_real { (MR_REAL, NR_REAL) } else { (MR, NR) };
    let kbs: Vec<(usize, usize)> =
        (0..k).step_by(kc_blk).map(|pc| (pc, kc_blk.min(k - pc))).collect();
    let ibs: Vec<(usize, usize)> =
        (0..m).step_by(mc_blk).map(|ic| (ic, mc_blk.min(m - ic))).collect();
    let jbs: Vec<(usize, usize)> =
        (0..n).step_by(nc_blk).map(|jc| (jc, nc_blk.min(n - jc))).collect();

    // Panels are padded to full register strips; split-complex panels hold
    // two f64 lanes per element, real panels one.
    let lanes = if assume_real { 1 } else { 2 };
    let round_up = |x: usize, u: usize| x.div_ceil(u) * u;
    let a_elems = ibs.iter().map(|&(_, mc)| round_up(mc, mr)).sum::<usize>() * k * lanes;
    let b_elems = jbs.iter().map(|&(_, nc)| round_up(nc, nr)).sum::<usize>() * k * lanes;
    if (a_elems + b_elems).saturating_mul(8) > PANEL_MEM_LIMIT {
        exec_gemm_private_tiles(
            pool,
            opa,
            opb,
            m,
            n,
            k,
            a,
            b,
            lda,
            ldb,
            c,
            assume_real,
            &ibs,
            &jbs,
        );
        return;
    }

    let nk = kbs.len();
    let a_slots: Vec<PanelSlot> = (0..ibs.len() * nk).map(|_| PanelSlot::new()).collect();
    let b_slots: Vec<PanelSlot> = (0..jbs.len() * nk).map(|_| PanelSlot::new()).collect();
    let c_ptr = SendPtr(c.as_mut_ptr());
    let c_ptr = &c_ptr;

    let mut graph = TaskGraph::new();
    let mut a_tasks: Vec<TaskId> = Vec::with_capacity(a_slots.len());
    for (ibi, &(ic, mc)) in ibs.iter().enumerate() {
        for (kbi, &(pc, kc)) in kbs.iter().enumerate() {
            let slot = &a_slots[ibi * nk + kbi];
            a_tasks.push(graph.add(TaskKind::Pack, &[], move || {
                // Safety: sole writer of this slot (see PanelSlot).
                let buf = unsafe { &mut *slot.buf.get() };
                let all_real = if assume_real {
                    pack_a_real(opa, a, lda, ic, mc, pc, kc, buf);
                    true
                } else {
                    pack_a(opa, a, lda, ic, mc, pc, kc, buf)
                };
                slot.real.store(all_real, Ordering::Relaxed);
                Ok(())
            }));
        }
    }
    let mut b_tasks: Vec<TaskId> = Vec::with_capacity(b_slots.len());
    for (jbi, &(jc, nc)) in jbs.iter().enumerate() {
        for (kbi, &(pc, kc)) in kbs.iter().enumerate() {
            let slot = &b_slots[jbi * nk + kbi];
            b_tasks.push(graph.add(TaskKind::Pack, &[], move || {
                // Safety: sole writer of this slot (see PanelSlot).
                let buf = unsafe { &mut *slot.buf.get() };
                let all_real = if assume_real {
                    pack_b_real(opb, b, ldb, pc, kc, jc, nc, buf);
                    true
                } else {
                    pack_b(opb, b, ldb, pc, kc, jc, nc, buf)
                };
                slot.real.store(all_real, Ordering::Relaxed);
                Ok(())
            }));
        }
    }
    for (ibi, &(ic, mc)) in ibs.iter().enumerate() {
        for (jbi, &(jc, nc)) in jbs.iter().enumerate() {
            let mut prev: Option<TaskId> = None;
            for (kbi, &(_pc, kc)) in kbs.iter().enumerate() {
                let mut deps = vec![a_tasks[ibi * nk + kbi], b_tasks[jbi * nk + kbi]];
                if let Some(p) = prev {
                    deps.push(p);
                }
                let a_slot = &a_slots[ibi * nk + kbi];
                let b_slot = &b_slots[jbi * nk + kbi];
                prev = Some(graph.add(TaskKind::Gemm, &deps, move || {
                    // Safety: panels were written by this task's pack
                    // dependencies; the C macro-tile is owned by this
                    // (ic, jc) chain, serialised by the depth edge.
                    unsafe {
                        let ap = &*a_slot.buf.get();
                        let bp = &*b_slot.buf.get();
                        if assume_real {
                            tile_depth_block_real(ap, bp, c_ptr.0, n, ic, jc, mc, nc, kc);
                        } else {
                            let block_real = a_slot.real.load(Ordering::Relaxed)
                                && b_slot.real.load(Ordering::Relaxed);
                            tile_depth_block(ap, bp, block_real, c_ptr.0, n, ic, jc, mc, nc, kc);
                        }
                    }
                    Ok(())
                }));
            }
        }
    }
    run_graph(graph, pool);
}

/// Fallback parallel schedule for products whose resident panels would
/// exceed [`PANEL_MEM_LIMIT`]: one independent task per `(ic, jc)`
/// macro-tile, each packing its own panels (the pre-executor behaviour).
/// Accumulation order per C element is still the serial depth order.
#[allow(clippy::too_many_arguments)]
fn exec_gemm_private_tiles(
    pool: &koala_exec::Pool,
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    lda: usize,
    ldb: usize,
    c: &mut [C64],
    assume_real: bool,
    ibs: &[(usize, usize)],
    jbs: &[(usize, usize)],
) {
    let c_ptr = SendPtr(c.as_mut_ptr());
    let c_ptr = &c_ptr;
    let mut graph = TaskGraph::new();
    for &(ic, _mc) in ibs {
        for &(jc, _nc) in jbs {
            graph.add(TaskKind::Gemm, &[], move || {
                // Safety: tiles are disjoint in C; operands are only read.
                unsafe {
                    if assume_real {
                        compute_tile_real(opa, opb, m, n, k, a, b, lda, ldb, c_ptr.0, ic, jc);
                    } else {
                        compute_tile(opa, opb, m, n, k, a, b, lda, ldb, c_ptr.0, ic, jc);
                    }
                }
                Ok(())
            });
        }
    }
    run_graph(graph, pool);
}

/// Compute one `(MC, NC)` macro-tile of C at `(ic, jc)`.
///
/// Work executed here is credited to the global counters at per-kernel
/// granularity: depth blocks run by the real microkernel (asserted or
/// detected) count as real MACs, the rest as complex MACs. The per-tile sums
/// over all tiles and depth blocks reconstruct exactly `m * n * k`.
///
/// # Safety
///
/// `c` must point to an `m * n` buffer, and no other thread may concurrently
/// access the elements `c[i * n + j]` for `i` in `ic..ic+MC`, `j` in
/// `jc..jc+NC`.
#[allow(clippy::too_many_arguments)]
unsafe fn compute_tile(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    lda: usize,
    ldb: usize,
    c: *mut C64,
    ic: usize,
    jc: usize,
) {
    let mc = MC.min(m - ic);
    let nc = NC.min(n - jc);
    let mut ap: Vec<f64> = Vec::new();
    let mut bp: Vec<f64> = Vec::new();
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let b_real = pack_b(opb, b, ldb, pc, kc, jc, nc, &mut bp);
        let a_real = pack_a(opa, a, lda, ic, mc, pc, kc, &mut ap);
        // When both packed blocks turned out all-real, the strided real
        // kernel consumes just the real lanes of the split-complex panels.
        tile_depth_block(&ap, &bp, a_real && b_real, c, n, ic, jc, mc, nc, kc);
    }
}

/// Run the strip loops of one `(macro-tile, depth-block)` pair over already
/// packed split-complex panels, and credit its `mc * nc * kc` MACs to the
/// matching counter. Shared verbatim by the serial loop ([`compute_tile`])
/// and the task-graph schedule ([`exec_gemm`]) so both execute the exact
/// same arithmetic in the exact same order.
///
/// # Safety
///
/// Same aliasing contract as [`compute_tile`]: no other thread may touch
/// the `(ic..ic+mc, jc..jc+nc)` elements of `c` concurrently.
#[allow(clippy::too_many_arguments)]
unsafe fn tile_depth_block(
    ap: &[f64],
    bp: &[f64],
    block_real: bool,
    c: *mut C64,
    ldc: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let a_strip_len = kc * 2 * MR;
    let b_strip_len = kc * 2 * NR;
    if block_real {
        meter::add_real_macs((mc * nc * kc) as u64);
    } else {
        meter::add_complex_macs((mc * nc * kc) as u64);
    }
    for (js, j0) in (jc..jc + nc).step_by(NR).enumerate() {
        let nr = NR.min(jc + nc - j0);
        let b_strip = &bp[js * b_strip_len..(js + 1) * b_strip_len];
        for (is, i0) in (ic..ic + mc).step_by(MR).enumerate() {
            let mr = MR.min(ic + mc - i0);
            let a_strip = &ap[is * a_strip_len..(is + 1) * a_strip_len];
            if block_real {
                let acc = microkernel_real(kc, a_strip, 2 * MR, b_strip, 2 * NR);
                write_tile_real(&acc, c, ldc, i0, j0, mr, nr);
            } else {
                let acc = microkernel(kc, a_strip, b_strip);
                write_tile(&acc, c, ldc, i0, j0, mr, nr);
            }
        }
    }
}

/// Compute one `(MC_REAL, NC_REAL)` macro-tile of C at `(ic, jc)` on the
/// caller-asserted real path: `f64`-only packed panels consumed by the wide
/// `8 x 16` real microkernel. All work is credited to the real-MAC counter.
///
/// # Safety
///
/// Same aliasing contract as [`compute_tile`] with the real-path tile sizes.
#[allow(clippy::too_many_arguments)]
unsafe fn compute_tile_real(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[C64],
    b: &[C64],
    lda: usize,
    ldb: usize,
    c: *mut C64,
    ic: usize,
    jc: usize,
) {
    let mc = MC_REAL.min(m - ic);
    let nc = NC_REAL.min(n - jc);
    let mut ap: Vec<f64> = Vec::new();
    let mut bp: Vec<f64> = Vec::new();
    for pc in (0..k).step_by(KC_REAL) {
        let kc = KC_REAL.min(k - pc);
        pack_b_real(opb, b, ldb, pc, kc, jc, nc, &mut bp);
        pack_a_real(opa, a, lda, ic, mc, pc, kc, &mut ap);
        tile_depth_block_real(&ap, &bp, c, n, ic, jc, mc, nc, kc);
    }
}

/// [`tile_depth_block`] for the caller-asserted real path: `f64`-only
/// panels, the wide `8 x 16` real microkernel, all work credited to the
/// real-MAC counter.
///
/// # Safety
///
/// Same aliasing contract as [`compute_tile`] with the real tile sizes.
#[allow(clippy::too_many_arguments)]
unsafe fn tile_depth_block_real(
    ap: &[f64],
    bp: &[f64],
    c: *mut C64,
    ldc: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let a_strip_len = kc * MR_REAL;
    let b_strip_len = kc * NR_REAL;
    meter::add_real_macs((mc * nc * kc) as u64);
    for (js, j0) in (jc..jc + nc).step_by(NR_REAL).enumerate() {
        let nr = NR_REAL.min(jc + nc - j0);
        let b_strip = &bp[js * b_strip_len..(js + 1) * b_strip_len];
        for (is, i0) in (ic..ic + mc).step_by(MR_REAL).enumerate() {
            let mr = MR_REAL.min(ic + mc - i0);
            let a_strip = &ap[is * a_strip_len..(is + 1) * a_strip_len];
            let acc = microkernel_real_wide(kc, a_strip, b_strip);
            write_tile_real_wide(&acc, c, ldc, i0, j0, mr, nr);
        }
    }
}

/// Add an accumulator tile into C, masking the ragged edges.
///
/// # Safety
///
/// Same aliasing contract as [`compute_tile`].
#[inline(always)]
unsafe fn write_tile(
    acc: &AccTile,
    c: *mut C64,
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for i in 0..mr {
        let row = c.add((i0 + i) * ldc + j0);
        for j in 0..nr {
            let z = &mut *row.add(j);
            z.re += acc.re[i][j];
            z.im += acc.im[i][j];
        }
    }
}

/// Add a real accumulator tile into the real parts of C, masking the ragged
/// edges. Imaginary parts are untouched (the update contributes none).
///
/// # Safety
///
/// Same aliasing contract as [`compute_tile`].
#[inline(always)]
unsafe fn write_tile_real(
    acc: &RealAccTile,
    c: *mut C64,
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for i in 0..mr {
        let row = c.add((i0 + i) * ldc + j0);
        for j in 0..nr {
            (*row.add(j)).re += acc[i][j];
        }
    }
}

/// [`write_tile_real`] for the wide `8 x 16` real accumulator tile.
///
/// # Safety
///
/// Same aliasing contract as [`compute_tile`].
#[inline(always)]
unsafe fn write_tile_real_wide(
    acc: &RealAccTileWide,
    c: *mut C64,
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for i in 0..mr {
        let row = c.add((i0 + i) * ldc + j0);
        for j in 0..nr {
            (*row.add(j)).re += acc[i][j];
        }
    }
}

/// The seed repository's blocked-but-unpacked kernel, kept verbatim so the
/// benchmark suite (`bench_gemm`) can report the packed kernel's speedup
/// against the exact baseline it replaced. Not used by any production path.
pub fn matmul_seed(a: &Matrix, b: &Matrix) -> Matrix {
    const SEED_KC: usize = 128;
    const SEED_NC: usize = 128;
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "matmul_seed: inner dimensions do not match");
    let k = ka;
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let a_data = a.data();
    let b_data = b.data();
    let c_data = c.data_mut();
    for kk in (0..k).step_by(SEED_KC) {
        let kmax = (kk + SEED_KC).min(k);
        for jj in (0..n).step_by(SEED_NC) {
            let jmax = (jj + SEED_NC).min(n);
            for i in 0..m {
                let a_row = &a_data[i * k..i * k + k];
                let c_row = &mut c_data[i * n..(i + 1) * n];
                for p in kk..kmax {
                    let aip = a_row[p];
                    if aip.re == 0.0 && aip.im == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[p * n..p * n + n];
                    for j in jj..jmax {
                        c_row[j] = c_row[j].mul_add(aip, b_row[j]);
                    }
                }
            }
        }
    }
    c
}

/// Naive triple-loop reference implementation (used by tests and kept public
/// so property tests in dependent crates can cross-check the fast path).
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_naive: inner dimensions do not match");
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = C64::ZERO;
            for p in 0..k {
                acc = acc.mul_add(a[(i, p)], b[(p, j)]);
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Matrix::random(7, 5, &mut rng);
        assert!(matmul(&Matrix::identity(7), &a).approx_eq(&a, 1e-13));
        assert!(matmul(&a, &Matrix::identity(5)).approx_eq(&a, 1e-13));
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 2, 9), (13, 17, 3)] {
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), 1e-11));
        }
    }

    #[test]
    fn matches_naive_across_blocking_edges() {
        // Shapes straddling MR/NR/KC/MC/NC boundaries.
        let mut rng = StdRng::seed_from_u64(12);
        for &(m, k, n) in &[(4, 8, 8), (5, 9, 9), (3, 130, 11), (130, 5, 17), (9, 7, 515)] {
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(
                fast.approx_eq(&slow, 1e-9 * (k as f64)),
                "mismatch at {m}x{k}x{n}: {:e}",
                fast.max_diff(&slow)
            );
        }
    }

    #[test]
    fn matches_naive_large_parallel_path() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Matrix::random(70, 90, &mut rng);
        let b = Matrix::random(90, 65, &mut rng);
        assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), 1e-9));
    }

    #[test]
    fn adjoint_variants() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Matrix::random(6, 4, &mut rng);
        let b = Matrix::random(6, 5, &mut rng);
        let c1 = matmul_adj_a(&a, &b);
        let c2 = matmul(&a.adjoint(), &b);
        assert!(c1.approx_eq(&c2, 1e-12));

        let d = Matrix::random(3, 4, &mut rng);
        let e = Matrix::random(5, 4, &mut rng);
        let f1 = matmul_adj_b(&d, &e);
        let f2 = matmul(&d, &e.adjoint());
        assert!(f1.approx_eq(&f2, 1e-12));

        let g1 = gemm(Op::Transpose, Op::None, &a, &a.conj());
        let g2 = matmul(&a.transpose(), &a.conj());
        assert!(g1.approx_eq(&g2, 1e-12));
    }

    #[test]
    fn seed_kernel_agrees_with_packed_kernel() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = Matrix::random(33, 47, &mut rng);
        let b = Matrix::random(47, 29, &mut rng);
        assert!(matmul_seed(&a, &b).approx_eq(&matmul(&a, &b), 1e-10));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dimension_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(matmul(&a, &b).shape(), (0, 2));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.norm_max() == 0.0);
    }

    #[test]
    fn flop_counter_tracks_work() {
        reset_flop_counter();
        // Real operands (hinted): all work is credited to the real-MAC
        // counter, none to the complex one.
        let a = Matrix::full(8, 4, c64(1.0, 0.0));
        let b = Matrix::full(4, 6, c64(1.0, 0.0));
        let _ = matmul(&a, &b);
        assert_eq!(flop_counter(), 0);
        assert_eq!(real_mac_counter(), (8 * 4 * 6) as u64);
        reset_flop_counter();
        // Genuinely complex operands: all work is complex MACs.
        let a = Matrix::full(8, 4, c64(1.0, 0.5));
        let b = Matrix::full(4, 6, c64(1.0, -0.25));
        let _ = matmul(&a, &b);
        assert_eq!(flop_counter(), (8 * 4 * 6) as u64);
        assert_eq!(real_mac_counter(), 0);
        reset_flop_counter();
        assert_eq!(flop_counter(), 0);
        assert_eq!(real_mac_counter(), 0);
    }

    #[test]
    fn real_dispatch_matches_naive_and_marks_output() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[(1, 1, 1), (5, 9, 9), (13, 17, 3), (70, 90, 65), (3, 130, 11)] {
            let a = Matrix::random_real(m, k, &mut rng);
            let b = Matrix::random_real(k, n, &mut rng);
            assert!(a.is_real() && b.is_real());
            let fast = matmul(&a, &b);
            assert!(fast.is_real(), "product of hinted-real operands is marked real");
            let slow = matmul_naive(&a, &b);
            assert!(
                fast.approx_eq(&slow, 1e-12 * (k as f64).max(1.0)),
                "real dispatch mismatch at {m}x{k}x{n}: {:e}",
                fast.max_diff(&slow)
            );
        }
    }

    #[test]
    fn per_block_detection_runs_real_kernel_on_unhinted_real_data() {
        let mut rng = StdRng::seed_from_u64(22);
        let hinted = Matrix::random_real(20, 30, &mut rng);
        // Launder the data through from_vec so the structural hint is lost.
        let unhinted_a = Matrix::from_vec(20, 30, hinted.data().to_vec()).unwrap();
        let unhinted_b = Matrix::random_real(30, 10, &mut rng);
        let unhinted_b = Matrix::from_vec(30, 10, unhinted_b.data().to_vec()).unwrap();
        assert!(!unhinted_a.is_real() && !unhinted_b.is_real());
        reset_flop_counter();
        let c = matmul(&unhinted_a, &unhinted_b);
        // The packers detect the zero imaginary lanes and the whole product
        // runs on the real kernel, billed as real MACs.
        assert_eq!(real_mac_counter(), (20 * 30 * 10) as u64);
        assert_eq!(flop_counter(), 0);
        // The output hint stays conservative (detection is per block, not a
        // structural guarantee about the operands).
        assert!(!c.is_real());
        reset_flop_counter();
    }

    #[test]
    fn mixed_real_complex_operands_use_the_complex_kernel() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::random_real(12, 9, &mut rng);
        let b = Matrix::random(9, 7, &mut rng);
        reset_flop_counter();
        let fast = matmul(&a, &b);
        assert_eq!(flop_counter(), (12 * 9 * 7) as u64);
        assert_eq!(real_mac_counter(), 0);
        assert!(!fast.is_real());
        assert!(fast.approx_eq(&matmul_naive(&a, &b), 1e-11));
        reset_flop_counter();
    }

    #[test]
    fn associativity_with_random_matrices() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = Matrix::random(4, 5, &mut rng);
        let b = Matrix::random(5, 6, &mut rng);
        let c = Matrix::random(6, 3, &mut rng);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.approx_eq(&right, 1e-10));
    }
}
