//! Concurrency billing for the task-graph GEMM: packed-panel sharing, exact
//! MAC accounting, and bit-identical results under every schedule.
//!
//! The shared-panel lowering packs each A panel once per `(row-block,
//! depth-block)` and each B panel once per `(col-block, depth-block)`; GEMM
//! tile tasks *share* those panels through dependency edges instead of
//! re-packing privately. This file pins that with the process-wide pack-call
//! counters: the counts equal the block-grid formula and do not change with
//! the thread count. It also pins that `flop_counter` /
//! `real_mac_counter` bill exactly `m * n * k` per product under
//! concurrency, that outputs are bit-identical across 1/2/4/8 threads, and
//! — with a counting global allocator — that adding threads does not balloon
//! allocations (panels are shared, not duplicated per thread).

use koala_linalg::gemm::{flop_counter, matmul, real_mac_counter};
use koala_linalg::pack::{pack_counters, reset_pack_counters};
use koala_linalg::{Matrix, WorkMeter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pack counters, MAC counters, the allocator ledger, and the executor pool
/// are process-wide; serialize the tests in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

// Mirrors of the (private) cache-blocking constants in `gemm.rs`. If the
// blocking changes, the expected pack-call formula below changes with it —
// update both together.
const KC: usize = 256;
const NC: usize = 512;
const MC: usize = 192;
const KC_REAL: usize = 256;
const NC_REAL: usize = 512;
const MC_REAL: usize = 256;

fn blocks(total: usize, step: usize) -> u64 {
    total.div_ceil(step) as u64
}

/// Shared-panel packing on the task-graph path: each panel packed exactly
/// once per cache block, at 2, 4 and 8 threads alike. (One thread takes the
/// serial per-tile path, which packs privately; that path is covered by the
/// bit-identity test below instead.)
#[test]
fn shared_panels_pack_once_per_block_at_any_thread_count() {
    let _guard = SERIAL.lock().unwrap();
    let (m, n, k) = (256usize, 640, 320);
    let mut rng = StdRng::seed_from_u64(41);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    let expect_a = blocks(m, MC) * blocks(k, KC); // 2 * 2
    let expect_b = blocks(n, NC) * blocks(k, KC); // 2 * 2

    for threads in [2usize, 4, 8] {
        koala_exec::set_threads(threads);
        reset_pack_counters();
        let (f0, r0) = (flop_counter(), real_mac_counter());
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (m, n));
        let (pa, pb) = pack_counters();
        assert_eq!(pa, expect_a, "pack-A calls at {threads} threads");
        assert_eq!(pb, expect_b, "pack-B calls at {threads} threads");
        assert_eq!(
            flop_counter() - f0,
            (m * n * k) as u64,
            "complex MACs at {threads} threads must be exactly m*n*k"
        );
        assert_eq!(real_mac_counter() - r0, 0, "complex product must not bill real MACs");
    }
    koala_exec::set_threads(1);
}

/// The real-kernel variant of the same property: hinted-real operands take
/// the real blocking, pack once per block, and bill `real_mac_counter`
/// exactly.
#[test]
fn shared_real_panels_pack_once_per_block() {
    let _guard = SERIAL.lock().unwrap();
    let (m, n, k) = (320usize, 640, 320);
    let mut rng = StdRng::seed_from_u64(42);
    let a = Matrix::random_real(m, k, &mut rng);
    let b = Matrix::random_real(k, n, &mut rng);
    let expect_a = blocks(m, MC_REAL) * blocks(k, KC_REAL);
    let expect_b = blocks(n, NC_REAL) * blocks(k, KC_REAL);

    for threads in [2usize, 4, 8] {
        koala_exec::set_threads(threads);
        reset_pack_counters();
        let (f0, r0) = (flop_counter(), real_mac_counter());
        let c = matmul(&a, &b);
        assert!(c.is_real(), "real product must keep the realness hint");
        let (pa, pb) = pack_counters();
        assert_eq!(pa, expect_a, "pack-A calls at {threads} threads");
        assert_eq!(pb, expect_b, "pack-B calls at {threads} threads");
        assert_eq!(real_mac_counter() - r0, (m * n * k) as u64);
        assert_eq!(flop_counter() - f0, 0, "real product must not bill complex MACs");
    }
    koala_exec::set_threads(1);
}

/// Bit-identical output across 1/2/4/8 threads — the 1-thread serial path
/// (private per-tile packing) and the shared-panel task graph must produce
/// the same bytes, because both accumulate each tile's depth blocks in the
/// same order.
#[test]
fn gemm_output_is_bit_identical_across_thread_counts() {
    let _guard = SERIAL.lock().unwrap();
    let (m, n, k) = (256usize, 640, 320);
    let mut rng = StdRng::seed_from_u64(43);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);

    koala_exec::set_threads(1);
    let reference = matmul(&a, &b);
    for threads in [2usize, 4, 8] {
        koala_exec::set_threads(threads);
        let c = matmul(&a, &b);
        for (i, (x, y)) in c.data().iter().zip(reference.data().iter()).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "element {i} differs at {threads} threads: {x:?} vs {y:?}"
            );
        }
    }
    koala_exec::set_threads(1);
}

/// Scoped work attribution: a [`WorkMeter::scope`] sees exactly the MACs
/// and GEMM interface bytes of the products inside it — including depth
/// blocks executed by pool workers, because `TaskGraph::add` captures the
/// submitting thread's scope — and nothing from work outside the scope.
#[test]
fn scoped_meter_bills_exactly_and_travels_with_tasks() {
    let _guard = SERIAL.lock().unwrap();
    let (m, n, k) = (256usize, 640, 320);
    let mut rng = StdRng::seed_from_u64(45);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);

    for threads in [1usize, 4] {
        koala_exec::set_threads(threads);
        let meter = WorkMeter::new();
        let _outside = matmul(&a, &b);
        assert!(
            meter.ledger().is_zero(),
            "unscoped work must not bill a private meter ({threads} threads)"
        );
        let _inside = meter.scope(|| matmul(&a, &b));
        let ledger = meter.ledger();
        assert_eq!(
            ledger.complex_macs,
            (m * n * k) as u64,
            "scoped complex MACs at {threads} threads must be exactly m*n*k"
        );
        assert_eq!(ledger.real_macs, 0, "complex product must not bill real MACs");
        assert_eq!(
            ledger.bytes,
            ((m * k + k * n + m * n) * 16) as u64,
            "scoped bytes at {threads} threads must be the GEMM interface traffic"
        );
    }
    koala_exec::set_threads(1);
}

/// Panel sharing keeps the allocation footprint flat as threads grow: the
/// pack tasks (and their buffers) are a function of the block grid, not of
/// the schedule, so running the same product on 8 threads must allocate
/// less than twice the 2-thread bytes (the slack absorbs executor queue
/// noise, not per-thread panel copies).
#[test]
fn thread_count_does_not_balloon_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let (m, n, k) = (256usize, 640, 320);
    let mut rng = StdRng::seed_from_u64(44);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);

    let bytes_at = |threads: usize| {
        koala_exec::set_threads(threads);
        // Warm the pool (worker stacks, queues) outside the measurement.
        let _ = matmul(&a, &b);
        let before = ALLOCATED.load(Ordering::Relaxed);
        let c = matmul(&a, &b);
        let after = ALLOCATED.load(Ordering::Relaxed);
        drop(c);
        after - before
    };

    let at2 = bytes_at(2);
    let at8 = bytes_at(8);
    assert!(
        at8 < 2 * at2,
        "8-thread GEMM allocated {at8} bytes vs {at2} at 2 threads — panels are not shared"
    );
    koala_exec::set_threads(1);
}
