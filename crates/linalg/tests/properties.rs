//! Property-based tests for the linear-algebra substrate.

use koala_linalg::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: matrix dimensions kept small so Jacobi iterations stay fast.
fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..10, 1usize..10)
}

fn seeded_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random(m, n, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_distributes_over_addition((m, k) in dims(), n in 1usize..10, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(1));
        let c = seeded_matrix(k, n, seed.wrapping_add(2));
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn gemm_adjoint_reverses_order((m, k) in dims(), n in 1usize..10, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(7));
        let lhs = matmul(&a, &b).adjoint();
        let rhs = matmul(&b.adjoint(), &a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn qr_reconstructs_and_is_orthonormal((m, n) in dims(), seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let f = qr(&a);
        prop_assert!(f.q.has_orthonormal_cols(1e-9));
        prop_assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-9));
    }

    #[test]
    fn svd_reconstructs_with_sorted_nonnegative_values((m, n) in dims(), seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let f = svd(&a).unwrap();
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-8));
        prop_assert!(f.s.iter().all(|&x| x >= 0.0));
        prop_assert!(f.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_frobenius_norm_is_l2_of_singular_values((m, n) in dims(), seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let f = svd(&a).unwrap();
        let s_norm = f.s.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((s_norm - a.norm_fro()).abs() < 1e-8 * a.norm_fro().max(1.0));
    }

    #[test]
    fn truncated_svd_obeys_eckart_young_bound((m, n) in dims(), k in 1usize..6, seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let full = svd(&a).unwrap();
        let k = k.min(full.s.len());
        let trunc = full.truncated(k);
        let err = (&a - &trunc.reconstruct()).norm_fro();
        prop_assert!(err <= full.truncation_error(k) + 1e-8);
    }

    #[test]
    fn eigh_reconstructs_hermitian(n in 1usize..9, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random_hermitian(n, &mut rng);
        let e = eigh(&a).unwrap();
        let rec = matmul_adj_b(&matmul(&e.vectors, &Matrix::from_diag_real(&e.values)), &e.vectors);
        prop_assert!(rec.approx_eq(&a, 1e-8));
        prop_assert!(e.vectors.has_orthonormal_cols(1e-9));
    }

    #[test]
    fn gram_qr_matches_input(m in 2usize..20, n in 1usize..6, seed in 0u64..1000) {
        // Tall inputs, as in Algorithm 5's intended use.
        let m = m.max(n);
        let a = seeded_matrix(m, n, seed);
        let f = gram_qr(&a).unwrap();
        prop_assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-7));
    }

    #[test]
    fn lu_solve_recovers_solution(n in 1usize..8, cols in 1usize..4, seed in 0u64..1000) {
        let a = seeded_matrix(n, n, seed);
        // Shift the diagonal so singularity is essentially impossible.
        let mut a = a;
        for i in 0..n {
            a[(i, i)] += c64(3.0, 0.0);
        }
        let x = seeded_matrix(n, cols, seed.wrapping_add(13));
        let b = matmul(&a, &x);
        let solved = solve(&a, &b).unwrap();
        prop_assert!(solved.approx_eq(&x, 1e-7));
    }

    #[test]
    fn rsvd_recovers_exact_low_rank(m in 4usize..20, n in 4usize..20, r in 1usize..4, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = r.min(m).min(n);
        let left = Matrix::random(m, r, &mut rng);
        let right = Matrix::random(r, n, &mut rng);
        let a = matmul(&left, &right);
        let f = rsvd_matrix(&a, RsvdOptions::with_rank(r), &mut rng).unwrap();
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-7 * a.norm_max().max(1.0)));
    }

    #[test]
    fn expm_of_antihermitian_is_unitary(n in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = Matrix::random_hermitian(n, &mut rng);
        let u = expm_hermitian(&h, c64(0.0, 1.0)).unwrap();
        prop_assert!(u.has_orthonormal_cols(1e-9));
    }
}

/// Materialise the effective operand for an `Op`, for cross-checking the
/// packed kernel's fused paths against the naive reference.
fn materialize(op: Op, m: &Matrix) -> Matrix {
    match op {
        Op::None => m.clone(),
        Op::Transpose => m.transpose(),
        Op::Adjoint => m.adjoint(),
    }
}

const ALL_OPS: [Op; 3] = [Op::None, Op::Adjoint, Op::Transpose];

/// Packed GEMM vs the naive kernel across deliberately awkward shapes — tall
/// and skinny, short and wide, exact multiples of the register tile, sizes
/// straddling every blocking boundary, and empty operands — for all nine
/// `Op` combinations.
#[test]
fn packed_gemm_matches_naive_across_shapes_and_ops() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (6, 8, 8),    // exactly one MR x NR tile
        (5, 3, 9),    // ragged edges everywhere
        (1, 300, 1),  // dot-product shape crossing KC
        (400, 2, 3),  // tall and skinny crossing MC
        (3, 2, 600),  // short and wide crossing NC
        (37, 41, 29), // primes
        (0, 5, 4),    // empty m
        (4, 0, 5),    // empty k
        (5, 4, 0),    // empty n
    ];
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for &(m, k, n) in shapes {
        for opa in ALL_OPS {
            for opb in ALL_OPS {
                // Stored shapes so that the *effective* product is m x k * k x n.
                let a = match opa {
                    Op::None => Matrix::random(m, k, &mut rng),
                    _ => Matrix::random(k, m, &mut rng),
                };
                let b = match opb {
                    Op::None => Matrix::random(k, n, &mut rng),
                    _ => Matrix::random(n, k, &mut rng),
                };
                let fast = gemm(opa, opb, &a, &b);
                let slow = gemm::matmul_naive(&materialize(opa, &a), &materialize(opb, &b));
                assert_eq!(fast.shape(), (m, n));
                assert!(
                    fast.approx_eq(&slow, 1e-10 * (k.max(1) as f64)),
                    "gemm({opa:?}, {opb:?}) mismatch at {m}x{k}x{n}: {:e}",
                    fast.max_diff(&slow)
                );
            }
        }
    }
}

/// Real-dispatch GEMM vs the complex reference across the same awkward shape
/// grid and all nine `Op` combinations. The operands carry the structural
/// realness hint, so every product below runs on the real-only microkernel
/// (`f64` panels, one FMA per lane); the results must agree with full complex
/// arithmetic on the same data to 1e-12, and the outputs must carry the hint.
#[test]
fn real_dispatch_matches_complex_kernel_across_shapes_and_ops() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (6, 8, 8),    // exactly one MR x NR tile
        (5, 3, 9),    // ragged edges everywhere
        (1, 300, 1),  // dot-product shape crossing KC
        (400, 2, 3),  // tall and skinny crossing MC
        (3, 2, 600),  // short and wide crossing NC
        (37, 41, 29), // primes
        (0, 5, 4),    // empty m
        (4, 0, 5),    // empty k
    ];
    let mut rng = StdRng::seed_from_u64(0x5EA1);
    for &(m, k, n) in shapes {
        for opa in ALL_OPS {
            for opb in ALL_OPS {
                let a = match opa {
                    Op::None => Matrix::random_real(m, k, &mut rng),
                    _ => Matrix::random_real(k, m, &mut rng),
                };
                let b = match opb {
                    Op::None => Matrix::random_real(k, n, &mut rng),
                    _ => Matrix::random_real(n, k, &mut rng),
                };
                assert!(a.is_real() && b.is_real());
                gemm::reset_flop_counter();
                let fast = gemm(opa, opb, &a, &b);
                assert_eq!(
                    gemm::real_mac_counter(),
                    (m * n * k) as u64,
                    "gemm({opa:?}, {opb:?}) at {m}x{k}x{n} did not run on the real kernel"
                );
                assert_eq!(gemm::flop_counter(), 0);
                assert!(fast.is_real(), "real dispatch must mark its output real");
                let slow = gemm::matmul_naive(&materialize(opa, &a), &materialize(opb, &b));
                assert_eq!(fast.shape(), (m, n));
                assert!(
                    fast.approx_eq(&slow, 1e-12),
                    "real gemm({opa:?}, {opb:?}) mismatch at {m}x{k}x{n}: {:e}",
                    fast.max_diff(&slow)
                );
            }
        }
    }
    gemm::reset_flop_counter();
}

// The realness hint is a *guarantee*, never a guess: whenever a matrix
// reports `is_real()`, a full scan of its data must find exactly-zero
// imaginary parts — across constructor/transform chains that mix real and
// complex inputs, including ones that only *look* real (a complex phase
// entering through a scalar or an operand must drop the hint).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn realness_hint_is_never_falsely_retained(
        (m, n) in dims(),
        seed in 0u64..1000,
        phase in 0.0f64..std::f64::consts::TAU,
        pick in 0u32..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let real = Matrix::random_real(m, n, &mut rng);
        let complex = Matrix::random(m, n, &mut rng);
        let candidate = match pick {
            0 => real.scale(c64(phase.cos(), phase.sin())), // complex phase: hint must drop unless phase ≈ 0
            1 => &real + &complex,
            2 => real.transpose(),
            3 => matmul(&real, &Matrix::random_real(n, m, &mut rng)),
            4 => matmul(&real.conj(), &Matrix::random(n, m, &mut rng)),
            _ => {
                let mut x = real.clone();
                x[(m - 1, n - 1)] = c64(0.0, 1.0); // raw mutation: hint must drop
                x
            }
        };
        if candidate.is_real() {
            prop_assert!(
                candidate.data().iter().all(|z| z.im == 0.0),
                "is_real() reported true on data with nonzero imaginary parts"
            );
        }
    }
}

/// The retained seed kernel stays numerically interchangeable with the packed
/// kernel (it is the baseline the benchmark suite reports speedups against).
#[test]
fn seed_kernel_matches_packed_kernel() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for &(m, k, n) in &[(13, 130, 7), (64, 64, 64), (130, 9, 201)] {
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let packed = matmul(&a, &b);
        let seed = gemm::matmul_seed(&a, &b);
        assert!(packed.approx_eq(&seed, 1e-9 * (k as f64)));
    }
}

/// Same data, realness hint cleared (`from_vec` is conservative), so the
/// complex factorization branch runs on identical numbers.
fn launder(a: &Matrix) -> Matrix {
    let l = Matrix::from_vec(a.nrows(), a.ncols(), a.data().to_vec()).unwrap();
    assert!(!l.is_real());
    l
}

/// The real-only factorization paths must agree with the complex paths run on
/// the same (laundered) data to 1e-12 across every shape class, and their
/// outputs must carry the realness hint. The complex Jacobi paths leave
/// O(eps) imaginary noise behind on real data (`sin(pi) != 0` in floating
/// point), so the comparison is tolerance-based, not bitwise.
#[test]
fn real_path_factorizations_match_complex_path_across_shape_classes() {
    let mut rng = StdRng::seed_from_u64(0xFAC7);
    let rank_deficient = {
        let b = Matrix::random_real(12, 3, &mut rng);
        let c = Matrix::random_real(3, 8, &mut rng);
        matmul(&b, &c) // rank 3, 12x8
    };
    let cases: Vec<(&str, Matrix)> = vec![
        ("tall", Matrix::random_real(24, 6, &mut rng)),
        ("wide", Matrix::random_real(5, 17, &mut rng)),
        ("square", Matrix::random_real(9, 9, &mut rng)),
        ("rank_deficient", rank_deficient),
        ("empty_rows", Matrix::zeros(0, 4)),
        ("empty_cols", Matrix::zeros(4, 0)),
    ];
    for (label, a) in &cases {
        assert!(a.is_real(), "{label}: input must carry the hint");
        let laundered = launder(a);
        let scale = a.norm_max().max(1.0);

        // QR: identical algorithm on identical numbers up to complex round-off.
        let fr = qr(a);
        let fc = qr(&laundered);
        assert!(fr.q.is_real() && fr.r.is_real(), "{label}: QR factors must carry the hint");
        assert!(fr.q.max_diff(&fc.q) <= 1e-12, "{label}: Q mismatch");
        assert!(fr.r.max_diff(&fc.r) <= 1e-12 * scale, "{label}: R mismatch");
        assert!(matmul(&fr.q, &fr.r).approx_eq(a, 1e-12 * scale), "{label}: QR != A");

        // SVD: compare spectra and reconstructions (factor signs follow the
        // same rotation sequence but accumulate eps-level phase noise).
        let sr = svd(a).unwrap();
        let sc = svd(&laundered).unwrap();
        assert!(sr.u.is_real() && sr.vh.is_real(), "{label}: SVD factors must carry the hint");
        for (x, y) in sr.s.iter().zip(sc.s.iter()) {
            assert!((x - y).abs() <= 1e-12 * scale, "{label}: singular value mismatch");
        }
        assert!(sr.reconstruct().approx_eq(a, 1e-11 * scale), "{label}: USV^H != A");
        if !a.is_empty() {
            assert!(sr.u.has_orthonormal_cols(1e-11));
            assert!(sr.vh.adjoint().has_orthonormal_cols(1e-11));
        }

        // Gram-based SVD exercises the real eigh path underneath.
        if a.nrows() > 0 && a.ncols() > 0 && *label != "rank_deficient" {
            let sg = svd_gram(a).unwrap();
            assert!(
                sg.u.is_real() && sg.vh.is_real(),
                "{label}: svd_gram factors must carry the hint"
            );
            assert!(sg.reconstruct().approx_eq(a, 1e-7 * scale), "{label}: gram USV^H != A");
        }
    }

    // eigh on a real symmetric matrix: real Jacobi vs complex Jacobi.
    let r = Matrix::random_real(8, 8, &mut rng);
    let h = &r + &r.transpose();
    assert!(h.is_real());
    let er = eigh(&h).unwrap();
    let ec = eigh(&launder(&h)).unwrap();
    assert!(er.vectors.is_real(), "eigh eigenvectors must carry the hint");
    for (x, y) in er.values.iter().zip(ec.values.iter()) {
        assert!((x - y).abs() <= 1e-12 * h.norm_max().max(1.0), "eigenvalue mismatch");
    }
    let av = matmul(&h, &er.vectors);
    let vd = matmul(&er.vectors, &Matrix::from_diag_real(&er.values));
    assert!(av.approx_eq(&vd, 1e-10 * h.norm_max().max(1.0)));

    // gram_qr: reconstruction + hints (real eigh + element-wise assembly).
    let t = Matrix::random_real(30, 5, &mut rng);
    let g = gram_qr(&t).unwrap();
    assert!(
        g.q.is_real() && g.r.is_real() && g.r_inv.is_real(),
        "gram_qr factors must carry the hint"
    );
    assert!(matmul(&g.q, &g.r).approx_eq(&t, 1e-9));

    // LU solve: real elimination vs complex elimination on the same system.
    let a = {
        let mut a = Matrix::random_real(7, 7, &mut rng);
        for i in 0..7 {
            let d = a[(i, i)] + c64(7.0, 0.0);
            a[(i, i)] = d; // diagonally dominant, well-conditioned
        }
        a.mark_real_if_exact();
        a
    };
    let b = Matrix::random_real(7, 3, &mut rng);
    let xr = solve(&a, &b).unwrap();
    let xc = solve(&launder(&a), &launder(&b)).unwrap();
    assert!(xr.is_real(), "real LU solution must carry the hint");
    assert!(xr.max_diff(&xc) <= 1e-12, "LU solution mismatch");
    let xl = lstsq(&Matrix::random_real(20, 4, &mut rng), &Matrix::random_real(20, 2, &mut rng))
        .unwrap();
    assert!(xl.is_real(), "lstsq solution must carry the hint");

    // rsvd: a structurally real operator draws a real sketch, so the whole
    // iteration stays real and the factors carry the hint.
    let low_rank = {
        let b = Matrix::random_real(18, 3, &mut rng);
        let c = Matrix::random_real(3, 14, &mut rng);
        matmul(&b, &c)
    };
    let f = rsvd_matrix(&low_rank, RsvdOptions::with_rank(3), &mut rng).unwrap();
    assert!(f.u.is_real() && f.vh.is_real(), "rsvd factors must carry the hint");
    assert!(f.reconstruct().approx_eq(&low_rank, 1e-9));
}

// Factorization outputs must never *falsely* carry the realness hint: for
// arbitrary (mixed real/complex) inputs, any factor reporting `is_real()`
// must scan clean. This is the factorization-level counterpart of
// `realness_hint_is_never_falsely_retained`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn factorization_outputs_never_falsely_carry_the_hint(
        (m, n) in dims(),
        seed in 0u64..1000,
        make_real in 0u32..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = if make_real == 1 {
            Matrix::random_real(m, n, &mut rng)
        } else {
            Matrix::random(m, n, &mut rng)
        };
        let exactly_real = |mat: &Matrix| !mat.is_real() || mat.data().iter().all(|z| z.im == 0.0);

        let f = qr(&a);
        prop_assert!(exactly_real(&f.q), "Q falsely carries the hint");
        prop_assert!(exactly_real(&f.r), "R falsely carries the hint");

        let s = svd(&a).unwrap();
        prop_assert!(exactly_real(&s.u), "U falsely carries the hint");
        prop_assert!(exactly_real(&s.vh), "Vh falsely carries the hint");

        let h = {
            let sq = if m == n { a.clone() } else { Matrix::random(n, n, &mut rng) };
            &sq + &sq.adjoint()
        };
        let e = eigh(&h).unwrap();
        prop_assert!(exactly_real(&e.vectors), "eigenvectors falsely carry the hint");

        let g = gram_qr(&a).unwrap();
        prop_assert!(exactly_real(&g.q), "gram Q falsely carries the hint");
        prop_assert!(exactly_real(&g.r), "gram R falsely carries the hint");
        prop_assert!(exactly_real(&g.r_inv), "gram R^-1 falsely carries the hint");
    }
}
