//! Property-based tests for the linear-algebra substrate.

use koala_linalg::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: matrix dimensions kept small so Jacobi iterations stay fast.
fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..10, 1usize..10)
}

fn seeded_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random(m, n, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_distributes_over_addition((m, k) in dims(), n in 1usize..10, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(1));
        let c = seeded_matrix(k, n, seed.wrapping_add(2));
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn gemm_adjoint_reverses_order((m, k) in dims(), n in 1usize..10, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(7));
        let lhs = matmul(&a, &b).adjoint();
        let rhs = matmul(&b.adjoint(), &a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn qr_reconstructs_and_is_orthonormal((m, n) in dims(), seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let f = qr(&a);
        prop_assert!(f.q.has_orthonormal_cols(1e-9));
        prop_assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-9));
    }

    #[test]
    fn svd_reconstructs_with_sorted_nonnegative_values((m, n) in dims(), seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let f = svd(&a).unwrap();
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-8));
        prop_assert!(f.s.iter().all(|&x| x >= 0.0));
        prop_assert!(f.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_frobenius_norm_is_l2_of_singular_values((m, n) in dims(), seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let f = svd(&a).unwrap();
        let s_norm = f.s.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((s_norm - a.norm_fro()).abs() < 1e-8 * a.norm_fro().max(1.0));
    }

    #[test]
    fn truncated_svd_obeys_eckart_young_bound((m, n) in dims(), k in 1usize..6, seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let full = svd(&a).unwrap();
        let k = k.min(full.s.len());
        let trunc = full.truncated(k);
        let err = (&a - &trunc.reconstruct()).norm_fro();
        prop_assert!(err <= full.truncation_error(k) + 1e-8);
    }

    #[test]
    fn eigh_reconstructs_hermitian(n in 1usize..9, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random_hermitian(n, &mut rng);
        let e = eigh(&a).unwrap();
        let rec = matmul_adj_b(&matmul(&e.vectors, &Matrix::from_diag_real(&e.values)), &e.vectors);
        prop_assert!(rec.approx_eq(&a, 1e-8));
        prop_assert!(e.vectors.has_orthonormal_cols(1e-9));
    }

    #[test]
    fn gram_qr_matches_input(m in 2usize..20, n in 1usize..6, seed in 0u64..1000) {
        // Tall inputs, as in Algorithm 5's intended use.
        let m = m.max(n);
        let a = seeded_matrix(m, n, seed);
        let f = gram_qr(&a).unwrap();
        prop_assert!(matmul(&f.q, &f.r).approx_eq(&a, 1e-7));
    }

    #[test]
    fn lu_solve_recovers_solution(n in 1usize..8, cols in 1usize..4, seed in 0u64..1000) {
        let a = seeded_matrix(n, n, seed);
        // Shift the diagonal so singularity is essentially impossible.
        let mut a = a;
        for i in 0..n {
            a[(i, i)] = a[(i, i)] + c64(3.0, 0.0);
        }
        let x = seeded_matrix(n, cols, seed.wrapping_add(13));
        let b = matmul(&a, &x);
        let solved = solve(&a, &b).unwrap();
        prop_assert!(solved.approx_eq(&x, 1e-7));
    }

    #[test]
    fn rsvd_recovers_exact_low_rank(m in 4usize..20, n in 4usize..20, r in 1usize..4, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = r.min(m).min(n);
        let left = Matrix::random(m, r, &mut rng);
        let right = Matrix::random(r, n, &mut rng);
        let a = matmul(&left, &right);
        let f = rsvd_matrix(&a, RsvdOptions::with_rank(r), &mut rng).unwrap();
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-7 * a.norm_max().max(1.0)));
    }

    #[test]
    fn expm_of_antihermitian_is_unitary(n in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = Matrix::random_hermitian(n, &mut rng);
        let u = expm_hermitian(&h, c64(0.0, 1.0)).unwrap();
        prop_assert!(u.has_orthonormal_cols(1e-9));
    }
}
