//! Allocation accounting for the GEMM fused-transposition paths.
//!
//! The packed GEMM folds `Op::Adjoint` / `Op::Transpose` into operand
//! packing. This test pins that property down with a counting global
//! allocator: a transposed product must allocate (to within noise) exactly
//! what the plain product allocates — if either path materialised an operand
//! copy, the difference would show up as at least one full operand size.

use koala_linalg::gemm::{gemm, Op};
use koala_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn bytes_allocated_by(f: impl FnOnce() -> Matrix) -> u64 {
    let before = ALLOCATED.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOCATED.load(Ordering::Relaxed);
    drop(out);
    after - before
}

#[test]
fn transposed_gemm_does_not_materialize_operands() {
    const N: usize = 512;
    let operand_bytes = (N * N * std::mem::size_of::<koala_linalg::C64>()) as u64; // 4 MiB
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(N, N, &mut rng);
    let b = Matrix::random(N, N, &mut rng);

    // Warm up once so lazily initialised runtime state doesn't get billed to
    // the first measurement.
    let _ = gemm(Op::None, Op::None, &a, &b);

    let plain = bytes_allocated_by(|| gemm(Op::None, Op::None, &a, &b));
    let adjoint = bytes_allocated_by(|| gemm(Op::Adjoint, Op::None, &a, &b));
    let transpose = bytes_allocated_by(|| gemm(Op::Transpose, Op::Transpose, &a, &b));
    let both = bytes_allocated_by(|| gemm(Op::Adjoint, Op::Transpose, &a, &b));

    // The old implementation materialised `a.adjoint()` / `b.transpose()`
    // before multiplying, which costs `operand_bytes` per transposed operand.
    // The packed kernel fuses the transposition into packing, so every Op
    // combination must allocate the same as the plain product, give or take
    // far less than one operand.
    let slack = operand_bytes / 8;
    for (label, measured) in [("A^H*B", adjoint), ("A^T*B^T", transpose), ("A^H*B^T", both)] {
        let diff = measured.abs_diff(plain);
        assert!(
            diff < slack,
            "{label} allocated {measured} bytes vs {plain} for plain GEMM \
             (diff {diff}, operand is {operand_bytes}) — an operand copy is being materialised"
        );
    }
}
