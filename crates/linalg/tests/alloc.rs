//! Allocation accounting for the GEMM fused-transposition paths.
//!
//! The packed GEMM folds `Op::Adjoint` / `Op::Transpose` into operand
//! packing. This test pins that property down with a counting global
//! allocator: a transposed product must allocate (to within noise) exactly
//! what the plain product allocates — if either path materialised an operand
//! copy, the difference would show up as at least one full operand size.
//!
//! The same property is asserted for the higher-level kernels: the SVD wide
//! fallbacks, Gram QR, randomized SVD, and the least-squares solver must not
//! call `Matrix::adjoint` / `Matrix::transpose` at all (tracked by the
//! transpose-materialisation counter), and the wide-input SVD must stay
//! within the tall-input allocation footprint.

use koala_linalg::gemm::{gemm, matmul, Op};
use koala_linalg::{
    gram_qr, lstsq, reset_transpose_counter, rsvd_matrix, svd, svd_gram, transpose_counter, Matrix,
    RsvdOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The tests in this file read process-wide counters (bytes allocated,
/// transpositions materialised); run them one at a time so concurrent test
/// threads cannot pollute each other's measurements.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn bytes_allocated_by(f: impl FnOnce() -> Matrix) -> u64 {
    let before = ALLOCATED.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOCATED.load(Ordering::Relaxed);
    drop(out);
    after - before
}

#[test]
fn transposed_gemm_does_not_materialize_operands() {
    let _guard = SERIAL.lock().unwrap();
    const N: usize = 512;
    let operand_bytes = (N * N * std::mem::size_of::<koala_linalg::C64>()) as u64; // 4 MiB
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(N, N, &mut rng);
    let b = Matrix::random(N, N, &mut rng);

    // Warm up once so lazily initialised runtime state doesn't get billed to
    // the first measurement.
    let _ = gemm(Op::None, Op::None, &a, &b);

    let plain = bytes_allocated_by(|| gemm(Op::None, Op::None, &a, &b));
    let adjoint = bytes_allocated_by(|| gemm(Op::Adjoint, Op::None, &a, &b));
    let transpose = bytes_allocated_by(|| gemm(Op::Transpose, Op::Transpose, &a, &b));
    let both = bytes_allocated_by(|| gemm(Op::Adjoint, Op::Transpose, &a, &b));

    // The old implementation materialised `a.adjoint()` / `b.transpose()`
    // before multiplying, which costs `operand_bytes` per transposed operand.
    // The packed kernel fuses the transposition into packing, so every Op
    // combination must allocate the same as the plain product, give or take
    // far less than one operand.
    let slack = operand_bytes / 8;
    for (label, measured) in [("A^H*B", adjoint), ("A^T*B^T", transpose), ("A^H*B^T", both)] {
        let diff = measured.abs_diff(plain);
        assert!(
            diff < slack,
            "{label} allocated {measured} bytes vs {plain} for plain GEMM \
             (diff {diff}, operand is {operand_bytes}) — an operand copy is being materialised"
        );
    }
}

/// The multiply paths of `svd` (wide fallback), `svd_gram` (both
/// orientations), `gram_qr`, `rsvd`, and `lstsq` must never materialise a
/// transposed operand: every product routes the transposition through
/// `Op::Adjoint` / `Op::Transpose` GEMM packing, and the factors are
/// assembled element-wise in their destination layout.
#[test]
fn linalg_kernels_do_not_materialize_adjoints() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let tall = Matrix::random(40, 7, &mut rng);
    let wide = Matrix::random(7, 40, &mut rng);
    let rhs = Matrix::random(40, 3, &mut rng);

    reset_transpose_counter();
    let f = svd(&wide).unwrap();
    assert!(f.reconstruct().approx_eq(&wide, 1e-9), "wide Jacobi SVD must stay correct");
    let g = svd_gram(&tall).unwrap();
    assert!(g.reconstruct().approx_eq(&tall, 1e-8));
    let g = svd_gram(&wide).unwrap();
    assert!(g.reconstruct().approx_eq(&wide, 1e-8));
    let q = gram_qr(&tall).unwrap();
    assert!(matmul(&q.q, &q.r).approx_eq(&tall, 1e-8));
    let r = rsvd_matrix(&tall, RsvdOptions::with_rank(5), &mut rng).unwrap();
    assert_eq!(r.rank(), 5);
    let x = lstsq(&tall, &rhs).unwrap();
    assert_eq!(x.shape(), (7, 3));
    assert_eq!(
        transpose_counter(),
        0,
        "svd/gram/rsvd/solve multiply paths materialised a transpose"
    );
}

/// Counting-allocator check on the SVD wide fallback: factorizing a wide
/// matrix must not allocate more than factorizing the equivalent tall matrix
/// (it used to pay one full `a.adjoint()` plus two factor adjoints on top).
#[test]
fn wide_svd_allocates_no_more_than_tall() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let tall = Matrix::random(160, 10, &mut rng);
    // Element-wise conjugate transpose, built without Matrix::adjoint so the
    // materialisation counter stays meaningful for the other test.
    let mut wide = Matrix::zeros(10, 160);
    for i in 0..160 {
        for j in 0..10 {
            wide[(j, i)] = tall[(i, j)].conj();
        }
    }
    let operand_bytes = (160 * 10 * std::mem::size_of::<koala_linalg::C64>()) as u64;

    // Warm up both paths.
    let _ = svd(&tall).unwrap();
    let _ = svd(&wide).unwrap();

    let before_tall = ALLOCATED.load(Ordering::Relaxed);
    let f_tall = svd(&tall).unwrap();
    let tall_bytes = ALLOCATED.load(Ordering::Relaxed) - before_tall;
    let before_wide = ALLOCATED.load(Ordering::Relaxed);
    let f_wide = svd(&wide).unwrap();
    let wide_bytes = ALLOCATED.load(Ordering::Relaxed) - before_wide;
    for (a, b) in f_tall.s.iter().zip(f_wide.s.iter()) {
        assert!((a - b).abs() < 1e-9 * f_tall.s[0], "spectra of A and A^H must agree");
    }

    let slack = operand_bytes / 2;
    assert!(
        wide_bytes <= tall_bytes + slack,
        "wide SVD allocated {wide_bytes} bytes vs {tall_bytes} for tall \
         (operand is {operand_bytes}) — the old path materialised the adjoint"
    );
}

/// Real GEMM dispatch must never materialise a complex copy of an operand:
/// the real path packs `f64`-only panels straight out of the `C64` operands,
/// so on the same shape it allocates (a) strictly less than the complex path
/// — the packing footprint halves — and (b) the same for transposed as for
/// plain operands, i.e. fused transposition survives the real path too. A
/// complex operand copy anywhere would show up as a full `operand_bytes`
/// excess over either bound.
#[test]
fn real_gemm_dispatch_materializes_no_complex_copy() {
    let _guard = SERIAL.lock().unwrap();
    const N: usize = 512;
    let out_bytes = (N * N * std::mem::size_of::<koala_linalg::C64>()) as u64; // 4 MiB
    let mut rng = StdRng::seed_from_u64(10);
    let a_complex = Matrix::random(N, N, &mut rng);
    let b_complex = Matrix::random(N, N, &mut rng);
    let a_real = Matrix::random_real(N, N, &mut rng);
    let b_real = Matrix::random_real(N, N, &mut rng);
    assert!(a_real.is_real() && b_real.is_real());

    // Warm up both dispatch paths.
    let _ = gemm(Op::None, Op::None, &a_complex, &b_complex);
    let _ = gemm(Op::None, Op::None, &a_real, &b_real);

    let complex_alloc = bytes_allocated_by(|| gemm(Op::None, Op::None, &a_complex, &b_complex));
    let real_alloc = bytes_allocated_by(|| gemm(Op::None, Op::None, &a_real, &b_real));
    let real_alloc_t = bytes_allocated_by(|| gemm(Op::Transpose, Op::Adjoint, &a_real, &b_real));

    // Both paths allocate the m x n complex output; everything beyond it is
    // packing buffers. Real panels are exactly half the split-complex panels,
    // so the real path's packing overhead must come in well under the complex
    // path's — if the real dispatch materialised even one complex operand
    // copy it would exceed the complex path instead.
    assert!(complex_alloc > out_bytes, "complex path must at least allocate the output");
    assert!(real_alloc > out_bytes, "real path must at least allocate the output");
    let complex_pack = complex_alloc - out_bytes;
    let real_pack = real_alloc - out_bytes;
    assert!(
        real_pack <= complex_pack * 3 / 4,
        "real dispatch packed {real_pack} bytes vs {complex_pack} for the complex path \
         (operand is {out_bytes}) — a complex intermediate is being materialised"
    );
    // Fused transposition: transposed real operands cost no extra allocation.
    let slack = out_bytes / 8;
    assert!(
        real_alloc_t.abs_diff(real_alloc) < slack,
        "transposed real GEMM allocated {real_alloc_t} bytes vs {real_alloc} plain — \
         a transposed operand copy is being materialised"
    );
}
