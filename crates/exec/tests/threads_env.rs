//! Pins the documented thread-count configuration contract:
//! `KOALA_EXEC_THREADS` → `RAYON_NUM_THREADS` → host parallelism, clamped
//! to `1..=64`, plus the race-safety of [`koala_exec::set_threads`]
//! (an identical request keeps the existing pool).
//!
//! Everything lives in ONE `#[test]` function: environment variables are
//! process-global and the test harness runs a binary's tests on concurrent
//! threads, so interleaved `set_var` calls would race.

use koala_exec::{default_threads, pool, set_threads};
use std::env;
use std::sync::Arc;

/// Restores an environment variable to its pre-test value on drop, so a
/// failing assertion cannot leak a fake thread count into later processes
/// spawned by the same harness.
struct RestoreVar {
    key: &'static str,
    original: Option<String>,
}

impl RestoreVar {
    fn capture(key: &'static str) -> Self {
        Self { key, original: env::var(key).ok() }
    }
}

impl Drop for RestoreVar {
    fn drop(&mut self) {
        match &self.original {
            Some(v) => env::set_var(self.key, v),
            None => env::remove_var(self.key),
        }
    }
}

#[test]
fn env_precedence_clamping_and_idempotent_set_threads() {
    let _koala = RestoreVar::capture("KOALA_EXEC_THREADS");
    let _rayon = RestoreVar::capture("RAYON_NUM_THREADS");
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 64);

    // KOALA_EXEC_THREADS always wins over RAYON_NUM_THREADS.
    env::set_var("KOALA_EXEC_THREADS", "3");
    env::set_var("RAYON_NUM_THREADS", "5");
    assert_eq!(default_threads(), 3);

    // Without the executor's own knob, the rayon-compat variable is honoured.
    env::remove_var("KOALA_EXEC_THREADS");
    assert_eq!(default_threads(), 5);

    // Values clamp into 1..=64 rather than erroring.
    env::set_var("RAYON_NUM_THREADS", "200");
    assert_eq!(default_threads(), 64);
    env::set_var("KOALA_EXEC_THREADS", "0");
    assert_eq!(default_threads(), 1);

    // An unparsable value falls back to host parallelism (it does not fall
    // through to the next variable — precedence is on presence, not parse).
    env::set_var("KOALA_EXEC_THREADS", "zebra");
    env::set_var("RAYON_NUM_THREADS", "5");
    assert_eq!(default_threads(), host);

    // Neither variable set: host parallelism, clamped.
    env::remove_var("KOALA_EXEC_THREADS");
    env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(default_threads(), host);

    // set_threads is idempotent: asking for the current size keeps the
    // existing pool (same Arc), so racing identical startup calls cannot
    // tear down workers mid-flight.
    set_threads(2);
    let p1 = pool();
    assert_eq!(p1.threads(), 2);
    set_threads(2);
    let p2 = pool();
    assert!(Arc::ptr_eq(&p1, &p2), "identical set_threads must keep the pool");

    // A different size really does replace it.
    set_threads(3);
    let p3 = pool();
    assert!(!Arc::ptr_eq(&p1, &p3), "a new size must build a new pool");
    assert_eq!(p3.threads(), 3);
    set_threads(1);
}
