//! Concurrency stress suite for the `koala-exec` task-graph executor.
//!
//! Three properties pin the runtime's contract:
//!
//! 1. **Exactly-once execution**: every task of a randomized DAG runs once —
//!    never zero times, never twice — at any thread count, and never before
//!    any of its dependencies has finished.
//! 2. **Typed failure, no deadlock**: a panicking task surfaces as
//!    [`ErrorKind::TaskPanic`], a cancelled run as [`ErrorKind::Cancelled`];
//!    in both cases `run_on` returns (no hang), unreached task closures are
//!    dropped rather than executed, and the pool stays usable for
//!    subsequent runs (no orphaned worker state).
//! 3. **Nested runs**: a task may itself build and run a graph on the same
//!    pool without deadlocking (the inner caller helps execute its own run).

use koala_error::ErrorKind;
use koala_exec::{CancelToken, Pool, TaskGraph, TaskId, TaskKind};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Random DAG description: for task `i`, `dep_picks[i]` selects up to two
/// dependencies among tasks `0..i` (self-edges impossible by construction,
/// so the graph is acyclic).
fn deps_of(i: usize, picks: &[usize]) -> Vec<usize> {
    if i == 0 {
        return Vec::new();
    }
    let mut out = vec![picks[2 * i] % i];
    let second = picks[2 * i + 1] % i;
    if second != out[0] {
        out.push(second);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every task of a random DAG runs exactly once on pools of 1, 2 and 4
    /// threads, and only after all of its dependencies completed.
    #[test]
    fn random_dag_runs_every_task_exactly_once(
        n in 1usize..40,
        seed in 0usize..1_000_000,
    ) {
        let picks: Vec<usize> = (0..2 * 40).map(|j| seed.wrapping_mul(2654435761).wrapping_add(j * 40503)).collect();
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let runs: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let mut graph = TaskGraph::new();
            let mut ids: Vec<TaskId> = Vec::with_capacity(n);
            for i in 0..n {
                let dep_idx = deps_of(i, &picks);
                let dep_ids: Vec<TaskId> = dep_idx.iter().map(|&d| ids[d]).collect();
                let runs_ref = &runs;
                let done_ref = &done;
                let id = graph.add(TaskKind::Other, &dep_ids, move || {
                    for &d in &dep_idx {
                        assert!(
                            done_ref[d].load(Ordering::Acquire),
                            "task {i} ran before dependency {d} finished"
                        );
                    }
                    runs_ref[i].fetch_add(1, Ordering::Relaxed);
                    done_ref[i].store(true, Ordering::Release);
                    Ok(())
                });
                ids.push(id);
            }
            graph.run_on(&pool).unwrap();
            for (i, r) in runs.iter().enumerate() {
                prop_assert_eq!(r.load(Ordering::Relaxed), 1, "task {} on {} threads", i, threads);
            }
        }
    }
}

/// A panicking task turns into `ErrorKind::TaskPanic`, the run returns
/// promptly, downstream closures are dropped unexecuted, and the same pool
/// then completes a healthy graph (workers survive the panic).
#[test]
fn panic_is_typed_and_pool_survives() {
    for threads in [1usize, 4] {
        let pool = Pool::new(threads);
        let after_ran = Arc::new(AtomicUsize::new(0));
        let mut graph = TaskGraph::new();
        let bad = graph.add(TaskKind::Other, &[], || panic!("boom in task"));
        let after = Arc::clone(&after_ran);
        graph.add(TaskKind::Other, &[bad], move || {
            after.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        let err = graph.run_on(&pool).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TaskPanic, "got: {err}");
        assert!(err.to_string().contains("boom in task"), "payload lost: {err}");
        assert_eq!(after_ran.load(Ordering::Relaxed), 0, "dependent of panicked task ran");

        // The pool is still healthy: a fresh graph completes normally.
        let count = AtomicUsize::new(0);
        let mut graph = TaskGraph::new();
        for _ in 0..16 {
            graph.add(TaskKind::Other, &[], || {
                count.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        }
        graph.run_on(&pool).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }
}

/// A task returning a typed error aborts the run with that error and skips
/// everything downstream of it.
#[test]
fn task_error_propagates() {
    let pool = Pool::new(2);
    let mut graph = TaskGraph::new();
    let bad = graph.add(TaskKind::Other, &[], || {
        Err(koala_error::KoalaError::new(ErrorKind::Numerical, "did not converge"))
    });
    let ran = AtomicUsize::new(0);
    let ran_ref = &ran;
    graph.add(TaskKind::Other, &[bad], move || {
        ran_ref.fetch_add(1, Ordering::Relaxed);
        Ok(())
    });
    let err = graph.run_on(&pool).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Numerical);
    assert_eq!(ran.load(Ordering::Relaxed), 0);
}

/// Cancellation before any task runs drains the whole graph: `run_on`
/// returns `ErrorKind::Cancelled`, no task body executes, and every task
/// closure is dropped (tracked by a drop guard) — nothing leaks into the
/// pool's queues to haunt a later run.
#[test]
fn cancellation_drains_cleanly() {
    struct DropGuard(Arc<AtomicUsize>);
    impl Drop for DropGuard {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    for threads in [1usize, 4] {
        let pool = Pool::new(threads);
        let token = CancelToken::new();
        token.cancel(); // cancelled before the run even starts
        let dropped = Arc::new(AtomicUsize::new(0));
        let executed = Arc::new(AtomicUsize::new(0));
        let mut graph = TaskGraph::new();
        graph.set_cancel_token(&token);
        let mut prev: Option<TaskId> = None;
        for _ in 0..32 {
            let guard = DropGuard(Arc::clone(&dropped));
            let executed = Arc::clone(&executed);
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(graph.add(TaskKind::Other, &deps, move || {
                let _hold = &guard;
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }));
        }
        let err = graph.run_on(&pool).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cancelled);
        assert_eq!(executed.load(Ordering::Relaxed), 0, "cancelled task still ran");
        assert_eq!(dropped.load(Ordering::Relaxed), 32, "task closures leaked");

        // Mid-run cancellation: the first task trips the token; independent
        // successors must not start afterwards, and all closures drop.
        let token = CancelToken::new();
        let dropped = Arc::new(AtomicUsize::new(0));
        let mut graph = TaskGraph::new();
        graph.set_cancel_token(&token);
        let trip = token.clone();
        let first = graph.add(TaskKind::Other, &[], move || {
            trip.cancel();
            Ok(())
        });
        for _ in 0..16 {
            let guard = DropGuard(Arc::clone(&dropped));
            graph.add(TaskKind::Other, &[first], move || {
                let _hold = &guard;
                Ok(())
            });
        }
        let err = graph.run_on(&pool).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cancelled);
        assert_eq!(dropped.load(Ordering::Relaxed), 16, "successor closures leaked");
    }
}

/// A task can build and run a nested graph on the same pool: the inner run
/// completes (the nested caller executes its own tasks when all workers are
/// busy) instead of deadlocking.
#[test]
fn nested_runs_do_not_deadlock() {
    for threads in [1usize, 2, 4] {
        let pool = Pool::new(threads);
        let pool_ref = &pool;
        let total = AtomicUsize::new(0);
        let total_ref = &total;
        let mut graph = TaskGraph::new();
        for _ in 0..8 {
            graph.add(TaskKind::Other, &[], move || {
                let mut inner = TaskGraph::new();
                for _ in 0..8 {
                    inner.add(TaskKind::Other, &[], move || {
                        total_ref.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    });
                }
                inner.run_on(pool_ref)
            });
        }
        graph.run_on(&pool).unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 64, "threads = {threads}");
    }
}

/// Wide diamond fan-out/fan-in: one source, many middles, one sink; the sink
/// observes every middle's side effect.
#[test]
fn diamond_fan_in_sees_all_predecessors() {
    let pool = Pool::new(4);
    let flags: Vec<AtomicBool> = (0..64).map(|_| AtomicBool::new(false)).collect();
    let flags_ref = &flags;
    let mut graph = TaskGraph::new();
    let src = graph.add(TaskKind::Other, &[], || Ok(()));
    let mids: Vec<TaskId> = (0..64)
        .map(|i| {
            graph.add(TaskKind::Other, &[src], move || {
                flags_ref[i].store(true, Ordering::Release);
                Ok(())
            })
        })
        .collect();
    let ok = AtomicBool::new(false);
    let ok_ref = &ok;
    graph.add(TaskKind::Other, &mids, move || {
        assert!(flags_ref.iter().all(|f| f.load(Ordering::Acquire)));
        ok_ref.store(true, Ordering::Release);
        Ok(())
    });
    graph.run_on(&pool).unwrap();
    assert!(ok.load(Ordering::Acquire));
}
