//! Scoped work accounting: [`WorkMeter`] handles that bill the arithmetic
//! and data-movement work executed inside a dynamic scope.
//!
//! The GEMM layer used to tally its complex/real multiply-adds on two
//! process-global statics, which made per-caller attribution impossible —
//! two concurrent workloads saw one merged number. This module replaces the
//! statics with a *stack of meters*:
//!
//! * The [`WorkMeter::global`] meter is the **default scope**: every unit of
//!   work is always billed to it, so readers of the historical process-wide
//!   counters (`koala_linalg::flop_counter`, `bench_gemm`, `check_bench`)
//!   see exactly the numbers they always saw.
//! * [`WorkMeter::scope`] pushes a meter onto a thread-local stack for the
//!   duration of a closure. Work billed inside the closure is added to that
//!   meter *in addition to* the global one (and to any enclosing scopes), so
//!   nested scopes each see their own subtotal and the sum over sibling
//!   scopes equals the global delta exactly (atomic adds commute).
//! * The scope stack **travels with executor tasks**: [`crate::TaskGraph::add`]
//!   captures the submitting thread's stack and installs it around the
//!   closure on whichever worker executes it. Work a scope *causes* is billed
//!   to it no matter which thread runs it — this is what makes per-tenant
//!   job billing in `koala-serve` exact even though the jobs' GEMM tiles
//!   execute on shared pool workers.
//!
//! Three counters are carried per meter, mirroring the conventions of the
//! GEMM layer and the cluster's `CommStats`:
//!
//! * `complex_macs` — complex multiply-adds (8 hardware flops each),
//! * `real_macs` — real multiply-adds (2 hardware flops each),
//! * `bytes` — data movement: the GEMM layer bills its interface traffic
//!   (operand reads + output writes, 16 bytes per complex element) once per
//!   product, and the virtual cluster bills its payload wire traffic.
//!
//! Billing is wait-free on the hot path: one relaxed atomic add per counter
//! per billing site for the global meter, plus one per active scope (the
//! stack is almost always empty or one deep).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Counter cells shared by all clones of one meter.
#[derive(Debug, Default)]
struct Cells {
    complex_macs: AtomicU64,
    real_macs: AtomicU64,
    bytes: AtomicU64,
}

/// A cloneable handle to a set of work counters. Clones share the same
/// cells; [`WorkLedger`] snapshots are consistent per counter (relaxed
/// loads), which is exact whenever no billing is concurrently in flight —
/// e.g. after a scope or task-graph run has completed.
#[derive(Debug, Clone, Default)]
pub struct WorkMeter {
    cells: Arc<Cells>,
}

/// A point-in-time snapshot of a [`WorkMeter`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkLedger {
    /// Complex multiply-adds executed (8 hardware flops each).
    pub complex_macs: u64,
    /// Real multiply-adds executed (2 hardware flops each).
    pub real_macs: u64,
    /// Bytes of data movement billed (GEMM interface traffic + cluster
    /// payload wire traffic).
    pub bytes: u64,
}

impl WorkLedger {
    /// Total hardware flops under the workspace convention: 8 per complex
    /// MAC, 2 per real MAC.
    pub fn hw_flops(&self) -> f64 {
        self.complex_macs as f64 * 8.0 + self.real_macs as f64 * 2.0
    }

    /// Counter-wise difference `self - earlier` (saturating at zero), for
    /// delta accounting around a region of work.
    pub fn minus(&self, earlier: &WorkLedger) -> WorkLedger {
        WorkLedger {
            complex_macs: self.complex_macs.saturating_sub(earlier.complex_macs),
            real_macs: self.real_macs.saturating_sub(earlier.real_macs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// Counter-wise sum, for aggregating sibling ledgers.
    pub fn plus(&self, other: &WorkLedger) -> WorkLedger {
        WorkLedger {
            complex_macs: self.complex_macs + other.complex_macs,
            real_macs: self.real_macs + other.real_macs,
            bytes: self.bytes + other.bytes,
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == WorkLedger::default()
    }
}

impl WorkMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> WorkMeter {
        WorkMeter::default()
    }

    /// The process-global meter — the default scope that every unit of work
    /// is billed to unconditionally. `koala_linalg::flop_counter()` and
    /// friends read (and reset) this meter, so its numbers are exactly the
    /// historical process-wide counters.
    pub fn global() -> &'static WorkMeter {
        static GLOBAL: OnceLock<WorkMeter> = OnceLock::new();
        GLOBAL.get_or_init(WorkMeter::new)
    }

    /// Complex multiply-adds billed to this meter so far.
    pub fn complex_macs(&self) -> u64 {
        self.cells.complex_macs.load(Ordering::Relaxed)
    }

    /// Real multiply-adds billed to this meter so far.
    pub fn real_macs(&self) -> u64 {
        self.cells.real_macs.load(Ordering::Relaxed)
    }

    /// Bytes of data movement billed to this meter so far.
    pub fn bytes(&self) -> u64 {
        self.cells.bytes.load(Ordering::Relaxed)
    }

    /// Snapshot all counters.
    pub fn ledger(&self) -> WorkLedger {
        WorkLedger {
            complex_macs: self.complex_macs(),
            real_macs: self.real_macs(),
            bytes: self.bytes(),
        }
    }

    /// Reset all counters to zero, returning the previous snapshot.
    pub fn reset(&self) -> WorkLedger {
        WorkLedger {
            complex_macs: self.cells.complex_macs.swap(0, Ordering::Relaxed),
            real_macs: self.cells.real_macs.swap(0, Ordering::Relaxed),
            bytes: self.cells.bytes.swap(0, Ordering::Relaxed),
        }
    }

    /// Do two handles share the same counter cells?
    pub fn same_meter(&self, other: &WorkMeter) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Run `f` with this meter pushed onto the calling thread's scope stack:
    /// work billed inside `f` — including work that executor tasks created
    /// inside `f` perform on *other* threads — is added to this meter on top
    /// of the global one and any enclosing scopes.
    ///
    /// Re-entrant scoping of the *same* meter is idempotent (the meter is
    /// billed once, not twice). The stack is restored even if `f` panics.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let pushed = SCOPE.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.iter().any(|m| m.same_meter(self)) {
                false
            } else {
                stack.push(self.clone());
                true
            }
        });
        let _guard = PopGuard { pushed };
        f()
    }
}

thread_local! {
    /// The calling thread's active scope stack (innermost last). The global
    /// meter is *not* on the stack — it is billed unconditionally.
    static SCOPE: RefCell<Vec<WorkMeter>> = const { RefCell::new(Vec::new()) };
}

/// Pops the scope pushed by [`WorkMeter::scope`] on drop (panic-safe).
struct PopGuard {
    pushed: bool,
}

impl Drop for PopGuard {
    fn drop(&mut self) {
        if self.pushed {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Snapshot the calling thread's scope stack (for task capture).
pub(crate) fn capture_scope() -> Vec<WorkMeter> {
    SCOPE.with(|s| s.borrow().clone())
}

/// Run `f` with the thread's scope stack *replaced* by `scope`, restoring
/// the previous stack afterwards (panic-safe). Replacement — not pushing —
/// is what gives tasks "the scope travels with the work" semantics: the
/// executing worker bills exactly the meters the submitting thread was
/// scoped to, no more (a worker's own transient state never leaks in) and
/// no double counting when the submitting thread itself executes the task.
pub(crate) fn with_scope<R>(scope: Vec<WorkMeter>, f: impl FnOnce() -> R) -> R {
    let prev = SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), scope));
    let _guard = RestoreGuard { prev: Some(prev) };
    f()
}

/// Restores a replaced scope stack on drop (panic-safe).
struct RestoreGuard {
    prev: Option<Vec<WorkMeter>>,
}

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
}

/// Bill `n` complex multiply-adds to the global meter and every meter in the
/// calling thread's scope stack.
#[inline]
pub fn add_complex_macs(n: u64) {
    WorkMeter::global().cells.complex_macs.fetch_add(n, Ordering::Relaxed);
    SCOPE.with(|s| {
        for m in s.borrow().iter() {
            m.cells.complex_macs.fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Bill `n` real multiply-adds (see [`add_complex_macs`]).
#[inline]
pub fn add_real_macs(n: u64) {
    WorkMeter::global().cells.real_macs.fetch_add(n, Ordering::Relaxed);
    SCOPE.with(|s| {
        for m in s.borrow().iter() {
            m.cells.real_macs.fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Bill `n` bytes of data movement (see [`add_complex_macs`]).
#[inline]
pub fn add_bytes(n: u64) {
    WorkMeter::global().cells.bytes.fetch_add(n, Ordering::Relaxed);
    SCOPE.with(|s| {
        for m in s.borrow().iter() {
            m.cells.bytes.fetch_add(n, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_billing_adds_to_scope_and_global() {
        let meter = WorkMeter::new();
        let g0 = WorkMeter::global().ledger();
        meter.scope(|| {
            add_complex_macs(5);
            add_real_macs(7);
            add_bytes(11);
        });
        add_complex_macs(3); // outside the scope: global only
        let g = WorkMeter::global().ledger().minus(&g0);
        assert_eq!(meter.ledger(), WorkLedger { complex_macs: 5, real_macs: 7, bytes: 11 });
        assert!(g.complex_macs >= 8 && g.real_macs >= 7 && g.bytes >= 11);
    }

    #[test]
    fn nested_scopes_each_see_their_subtotal() {
        let outer = WorkMeter::new();
        let inner = WorkMeter::new();
        outer.scope(|| {
            add_complex_macs(1);
            inner.scope(|| add_complex_macs(10));
        });
        assert_eq!(outer.complex_macs(), 11);
        assert_eq!(inner.complex_macs(), 10);
    }

    #[test]
    fn reentrant_same_meter_scope_bills_once() {
        let meter = WorkMeter::new();
        meter.scope(|| meter.scope(|| add_real_macs(4)));
        assert_eq!(meter.real_macs(), 4);
    }

    #[test]
    fn scope_stack_restored_after_panic() {
        let meter = WorkMeter::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            meter.scope(|| panic!("boom"));
        }));
        assert!(r.is_err());
        add_complex_macs(1); // must not land on `meter`
        assert_eq!(meter.complex_macs(), 0);
    }

    #[test]
    fn ledger_arithmetic() {
        let a = WorkLedger { complex_macs: 10, real_macs: 4, bytes: 100 };
        let b = WorkLedger { complex_macs: 3, real_macs: 9, bytes: 40 };
        assert_eq!(a.minus(&b), WorkLedger { complex_macs: 7, real_macs: 0, bytes: 60 });
        assert_eq!(a.plus(&b), WorkLedger { complex_macs: 13, real_macs: 13, bytes: 140 });
        assert!((a.hw_flops() - (80.0 + 8.0)).abs() < 1e-12);
        assert!(!a.is_zero() && WorkLedger::default().is_zero());
    }

    #[test]
    fn reset_returns_previous_snapshot() {
        let meter = WorkMeter::new();
        meter.scope(|| {
            add_complex_macs(2);
            add_bytes(8);
        });
        let prev = meter.reset();
        assert_eq!(prev, WorkLedger { complex_macs: 2, real_macs: 0, bytes: 8 });
        assert!(meter.ledger().is_zero());
    }

    #[test]
    fn scope_travels_with_tasks() {
        let pool = crate::Pool::new(4);
        let meter = WorkMeter::new();
        meter.scope(|| {
            let mut g = crate::TaskGraph::new();
            for _ in 0..64 {
                g.add(crate::TaskKind::Other, &[], || {
                    add_complex_macs(3);
                    Ok(())
                });
            }
            g.run_on(&pool).unwrap();
        });
        assert_eq!(meter.complex_macs(), 3 * 64);
        // Tasks created outside any scope must not bill the meter, even when
        // they run while another thread is scoped.
        let mut g = crate::TaskGraph::new();
        g.add(crate::TaskKind::Other, &[], || {
            add_complex_macs(1);
            Ok(())
        });
        g.run_on(&pool).unwrap();
        assert_eq!(meter.complex_macs(), 3 * 64);
    }
}
