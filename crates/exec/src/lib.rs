//! Work-stealing task-graph executor for the koala-rs hot paths.
//!
//! The shared-memory layer expresses its parallel work — packing panels,
//! GEMM macro-tiles, einsum plan steps, SUMMA rounds — as DAGs of typed
//! tasks with declared dependencies, and this crate runs them:
//!
//! - A [`Pool`] of persistent workers with per-worker deques and a shared
//!   injector queue. A pool of `n` threads spawns `n - 1` workers; the
//!   thread that calls [`TaskGraph::run_on`] is the n-th compute thread, so
//!   `n = 1` means *fully serial, inline, on the caller* — no workers, no
//!   queues, a plain topological FIFO walk. That serial walk is the
//!   reference order every parallel schedule must reproduce bit-for-bit.
//! - [`TaskGraph`] collects tasks (`FnOnce() -> Result<(), KoalaError>`
//!   closures that may borrow caller data) plus dependency edges, then
//!   [`TaskGraph::run`]s them. `run` blocks until every closure has been
//!   executed or dropped, which is what makes the borrow sound.
//!
//! # Determinism contract
//!
//! The executor makes **no** ordering promises beyond the dependency
//! edges; schedules differ run to run and thread count to thread count.
//! Callers therefore get bit-identical results by construction, not by
//! scheduling: every task writes a disjoint output region, and every
//! floating-point *accumulation* chain is expressed as a dependency chain
//! (task `k+1` of a reduction depends on task `k`), so the arithmetic
//! order is fixed by the graph no matter which thread runs which task.
//! Order-independent billing (MAC/byte counters) uses atomic adds, whose
//! integer sums are exact under any interleaving.
//!
//! # Failure model
//!
//! A task that returns `Err` or panics cancels the run: in-flight tasks
//! finish, every not-yet-started closure is dropped without running, and
//! `run` returns the first error (panics are converted to
//! [`ErrorKind::TaskPanic`]). A [`CancelToken`] does the same on demand
//! with [`ErrorKind::Cancelled`]. The pool itself never dies with a run:
//! workers catch unwinds, so a poisoned run leaves no orphaned threads
//! and the next `run` on the same pool starts clean.
//!
//! # Thread-count configuration
//!
//! The global pool is sized on first use by [`default_threads`], which reads
//! (in precedence order):
//!
//! 1. `KOALA_EXEC_THREADS` — the executor's own knob; always wins,
//! 2. `RAYON_NUM_THREADS` — honoured for continuity with the rayon shim the
//!    executor replaced, so existing run scripts keep working,
//! 3. the host's available parallelism.
//!
//! The result is clamped to `1..=64`. [`set_threads`] overrides the
//! environment at runtime and is safe to call from concurrent service
//! startup paths: it is idempotent (a call that matches the current pool
//! size keeps the existing workers instead of churning them) and in-flight
//! runs always finish on the pool they started on.
//!
//! # Work accounting
//!
//! The [`meter`] module provides scoped [`WorkMeter`] billing. Scope stacks
//! travel with tasks: [`TaskGraph::add`] captures the submitting thread's
//! stack and the executing worker installs it around the closure, so work a
//! scope causes is billed to it no matter which thread runs it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod meter;

pub use meter::{WorkLedger, WorkMeter};

use koala_error::{ErrorKind, KoalaError};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// Lock a mutex, recovering the guard from a poisoned lock. Task panics are
/// caught before they can poison executor state, so poisoning here can only
/// come from a panic in the executor itself; the counters and queues remain
/// structurally valid either way.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What a task *is*, for diagnostics and error context. The executor does
/// not dispatch on this — it exists so a failed run can say "GEMM tile task
/// 17 panicked" instead of "task 17 panicked".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Pack an operand panel into the kernel's blocked layout.
    Pack,
    /// One GEMM macro-tile (a fixed-order slice of an accumulation chain).
    Gemm,
    /// A reduction step (deterministic order comes from dependency edges).
    Reduce,
    /// An axis permutation / layout move.
    Permute,
    /// Communication (panel broadcast, checksum, delivery) in the cluster.
    Comm,
    /// One einsum plan step (a pairwise contraction).
    Step,
    /// Anything else.
    Other,
}

impl TaskKind {
    fn name(self) -> &'static str {
        match self {
            TaskKind::Pack => "pack",
            TaskKind::Gemm => "gemm",
            TaskKind::Reduce => "reduce",
            TaskKind::Permute => "permute",
            TaskKind::Comm => "comm",
            TaskKind::Step => "step",
            TaskKind::Other => "task",
        }
    }
}

/// Result type tasks return.
pub type TaskResult = Result<(), KoalaError>;

/// Opaque handle to a task within one [`TaskGraph`]; used to declare
/// dependencies. Only valid for the graph that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskId(usize);

/// Cooperative cancellation handle for a run. Cloneable; `cancel()` makes
/// the associated run drop every not-yet-started task and return
/// [`ErrorKind::Cancelled`] once in-flight tasks finish.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation of any run holding this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

type BoxedTask<'env> = Box<dyn FnOnce() -> TaskResult + Send + 'env>;

struct TaskNode<'env> {
    run: BoxedTask<'env>,
    kind: TaskKind,
    deps: Vec<usize>,
}

/// A DAG of tasks under construction. Tasks may borrow from the caller's
/// stack (`'env`); `run`/`run_on` block until every closure has been
/// executed or dropped, so the borrows stay sound.
///
/// Cycles are unrepresentable: dependencies are [`TaskId`]s, which only
/// exist for tasks already added, so every edge points backwards.
#[derive(Default)]
pub struct TaskGraph<'env> {
    tasks: Vec<TaskNode<'env>>,
    cancel: Option<CancelToken>,
}

impl<'env> TaskGraph<'env> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph { tasks: Vec::new(), cancel: None }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Add a task that runs after every task in `deps`. Duplicate entries
    /// in `deps` are permitted (each occurrence is one edge; the task still
    /// runs exactly once, after the dependency).
    ///
    /// The submitting thread's [`meter`] scope stack is captured here and
    /// installed around the closure wherever it executes, so scoped work
    /// accounting follows the task onto pool workers.
    pub fn add<F>(&mut self, kind: TaskKind, deps: &[TaskId], f: F) -> TaskId
    where
        F: FnOnce() -> TaskResult + Send + 'env,
    {
        debug_assert!(deps.iter().all(|d| d.0 < self.tasks.len()), "dependency on unknown task");
        let id = self.tasks.len();
        let scope = meter::capture_scope();
        let run: BoxedTask<'env> = if scope.is_empty() {
            Box::new(f)
        } else {
            Box::new(move || meter::with_scope(scope, f))
        };
        self.tasks.push(TaskNode { run, kind, deps: deps.iter().map(|d| d.0).collect() });
        TaskId(id)
    }

    /// Attach a cancellation token checked before each task starts.
    pub fn set_cancel_token(&mut self, token: &CancelToken) {
        self.cancel = Some(token.clone());
    }

    /// Run the graph on the process-global pool (see [`pool`]).
    pub fn run(self) -> TaskResult {
        self.run_on(&pool())
    }

    /// Run the graph on a specific pool. Blocks until the run completes,
    /// fails, or is cancelled; the calling thread executes tasks too.
    pub fn run_on(self, pool: &Pool) -> TaskResult {
        if self.tasks.is_empty() {
            return Ok(());
        }
        let n = self.tasks.len();
        let mut pending = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut kinds = Vec::with_capacity(n);
        let mut slots = Vec::with_capacity(n);
        for (i, node) in self.tasks.into_iter().enumerate() {
            pending.push(AtomicUsize::new(node.deps.len()));
            for &d in &node.deps {
                dependents[d].push(i);
            }
            kinds.push(node.kind);
            // SAFETY: lifetime erasure. The closure may borrow `'env` data,
            // but `RunState` never outlives this call with a live closure in
            // it: the loops below only return once `done == total`, and
            // `done` is bumped for a task strictly after its closure has
            // been executed or dropped. Stale queue entries that survive
            // the run hold only `(Arc<RunState>, usize)` — the closure slot
            // they point at is already empty.
            let erased: BoxedTask<'static> = unsafe { std::mem::transmute(node.run) };
            slots.push(Mutex::new(Some(erased)));
        }
        let state = Arc::new(RunState {
            slots,
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            pending,
            dependents,
            kinds,
            done: AtomicUsize::new(0),
            total: n,
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            cancel: self.cancel,
            monitor: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        if pool.shared.threads == 1 {
            run_serial(&state);
        } else {
            run_parallel(&state, &pool.shared);
        }
        debug_assert_eq!(state.done.load(Ordering::Acquire), n);

        if let Some(e) = lock(&state.error).take() {
            return Err(e);
        }
        if state.was_cancelled() {
            return Err(KoalaError::new(ErrorKind::Cancelled, "task graph run cancelled"));
        }
        Ok(())
    }
}

/// Shared state of one `run`: closure slots, dependency counters, and the
/// completion monitor. Queue entries reference tasks as `(Arc<RunState>,
/// index)`; the `claimed` flags guarantee each task is executed (or, on a
/// failed/cancelled run, dropped) exactly once no matter how many queue
/// entries or drain passes race for it.
struct RunState {
    slots: Vec<Mutex<Option<BoxedTask<'static>>>>,
    claimed: Vec<AtomicBool>,
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    kinds: Vec<TaskKind>,
    done: AtomicUsize,
    total: usize,
    failed: AtomicBool,
    error: Mutex<Option<KoalaError>>,
    cancel: Option<CancelToken>,
    monitor: Mutex<()>,
    done_cv: Condvar,
}

impl RunState {
    fn was_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// True once the run should stop starting new tasks.
    fn aborting(&self) -> bool {
        self.failed.load(Ordering::Acquire) || self.was_cancelled()
    }

    /// Claim the exclusive right to execute (or drop) task `idx`.
    fn claim(&self, idx: usize) -> bool {
        !self.claimed[idx].swap(true, Ordering::AcqRel)
    }

    fn record_error(&self, e: KoalaError) {
        let mut slot = lock(&self.error);
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.failed.store(true, Ordering::Release);
    }
}

/// Execute (or, on an aborting run, drop) an already-claimed task, then
/// release its dependents. `enqueue` receives each newly-ready task index.
fn execute_claimed(state: &Arc<RunState>, idx: usize, mut enqueue: impl FnMut(usize)) {
    if let Some(f) = lock(&state.slots[idx]).take() {
        if state.aborting() {
            drop(f);
        } else {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    state.record_error(e.context(format!("{} task {idx}", state.kinds[idx].name())))
                }
                // `&*payload`, not `&payload`: coercing `&Box<dyn Any>` to
                // `&dyn Any` would wrap the *box* and defeat the downcast.
                Err(payload) => state.record_error(
                    KoalaError::new(ErrorKind::TaskPanic, panic_message(&*payload))
                        .context(format!("{} task {idx}", state.kinds[idx].name())),
                ),
            }
        }
    }
    for &dep in &state.dependents[idx] {
        if state.pending[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
            enqueue(dep);
        }
    }
    state.done.fetch_add(1, Ordering::AcqRel);
    // Lock-then-notify pairs with the monitor-guarded `done` check in the
    // caller's wait loop, so a completion can never slip between its check
    // and its wait (no lost wakeup).
    let _g = lock(&state.monitor);
    state.done_cv.notify_all();
}

/// Drop every not-yet-claimed closure of an aborting run so `done` reaches
/// `total` even though their dependencies will never complete. Claiming
/// makes this idempotent and safe against racing workers.
fn drain_aborted(state: &Arc<RunState>) {
    for idx in 0..state.total {
        if state.claim(idx) {
            execute_claimed(state, idx, |_| {});
        }
    }
}

/// The `threads == 1` path: a plain topological FIFO walk on the calling
/// thread. Seeds ready tasks in id order and releases dependents in id
/// order, which is the reference schedule parallel runs must match
/// bit-for-bit (they do, because accumulation order is fixed by edges, not
/// by schedule).
fn run_serial(state: &Arc<RunState>) {
    let mut ready: VecDeque<usize> =
        (0..state.total).filter(|&i| state.pending[i].load(Ordering::Acquire) == 0).collect();
    while let Some(idx) = ready.pop_front() {
        if state.claim(idx) {
            execute_claimed(state, idx, |dep| ready.push_back(dep));
        }
    }
    if state.done.load(Ordering::Acquire) < state.total {
        // A failure/cancellation left tasks whose dependencies never
        // completed; drop their closures.
        drain_aborted(state);
    }
}

/// The parallel path: seed ready tasks into the pool's injector, then work
/// alongside the pool's workers until the run completes. The caller only
/// executes tasks of *its own* run — that restriction is what makes nested
/// runs (a task that itself builds and runs a graph) deadlock-free: every
/// blocked `run_on` call makes progress on its own graph even if all pool
/// workers are busy elsewhere.
fn run_parallel(state: &Arc<RunState>, shared: &Arc<Shared>) {
    let seeds: Vec<usize> =
        (0..state.total).filter(|&i| state.pending[i].load(Ordering::Acquire) == 0).collect();
    shared.push_many(state, &seeds);
    loop {
        if let Some(idx) = shared.pop_for(state) {
            if state.claim(idx) {
                let enqueue = |dep| shared.push_many(state, &[dep]);
                execute_claimed(state, idx, enqueue);
            }
            continue;
        }
        if state.aborting() && state.done.load(Ordering::Acquire) < state.total {
            drain_aborted(state);
            continue;
        }
        let g = lock(&state.monitor);
        if state.done.load(Ordering::Acquire) >= state.total {
            break;
        }
        // The timeout is a safety net only; completion always notifies.
        let (_g, _timeout) = state
            .done_cv
            .wait_timeout(g, Duration::from_millis(10))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}

type Job = (Arc<RunState>, usize);

/// State shared between a pool's workers and every thread running a graph
/// on it.
struct Shared {
    /// Logical thread count (workers + the calling thread).
    threads: usize,
    /// Global FIFO queue; callers seed here, workers take from the front.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques: the owner pushes/pops the back (LIFO keeps the
    /// working set hot), thieves and callers steal from the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs currently sitting in any queue (wake-up hint, not a lock).
    queued: AtomicUsize,
    shutdown: AtomicBool,
    idle: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared {
    fn push_many(self: &Arc<Self>, state: &Arc<RunState>, idxs: &[usize]) {
        if idxs.is_empty() {
            return;
        }
        self.queued.fetch_add(idxs.len(), Ordering::AcqRel);
        {
            let mut inj = lock(&self.injector);
            for &i in idxs {
                inj.push_back((Arc::clone(state), i));
            }
        }
        let _g = lock(&self.idle);
        if idxs.len() == 1 {
            self.idle_cv.notify_one();
        } else {
            self.idle_cv.notify_all();
        }
    }

    /// Pop any job (worker side): own deque back, injector front, then
    /// steal from the front of the other deques.
    fn pop_any(&self, worker: usize) -> Option<Job> {
        if let Some(job) = lock(&self.deques[worker]).pop_back() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        for (i, dq) in self.deques.iter().enumerate() {
            if i == worker {
                continue;
            }
            if let Some(job) = lock(dq).pop_front() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }

    /// Pop a job belonging to `state` (caller side): front of the injector
    /// first, then the front of each worker deque. Callers never execute
    /// other runs' tasks — see [`run_parallel`].
    fn pop_for(&self, state: &Arc<RunState>) -> Option<usize> {
        let take = |dq: &Mutex<VecDeque<Job>>| -> Option<usize> {
            let mut q = lock(dq);
            let pos = q.iter().position(|(s, _)| Arc::ptr_eq(s, state))?;
            let (_, idx) = q.remove(pos)?;
            Some(idx)
        };
        if let Some(idx) = take(&self.injector) {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            return Some(idx);
        }
        for dq in &self.deques {
            if let Some(idx) = take(dq) {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(idx);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some((state, idx)) = shared.pop_any(me) {
            if state.claim(idx) {
                let enqueue = |dep| {
                    // Keep dependents local: the data they touch is hot in
                    // this worker's cache; thieves take them if it stalls.
                    shared.queued.fetch_add(1, Ordering::AcqRel);
                    lock(&shared.deques[me]).push_back((Arc::clone(&state), dep));
                    let _g = lock(&shared.idle);
                    shared.idle_cv.notify_one();
                };
                execute_claimed(&state, idx, enqueue);
            }
            continue;
        }
        let g = lock(&shared.idle);
        if shared.shutdown.load(Ordering::Acquire) || shared.queued.load(Ordering::Acquire) > 0 {
            continue;
        }
        let (_g, _t) = shared
            .idle_cv
            .wait_timeout(g, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// A fixed-size executor: `threads - 1` persistent workers plus the thread
/// that calls [`TaskGraph::run_on`]. Dropping the pool shuts the workers
/// down and joins them.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Build a pool with `threads` compute threads (min 1). `threads == 1`
    /// spawns no workers at all; graphs run inline on the caller.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let n_workers = threads - 1;
        let shared = Arc::new(Shared {
            threads,
            injector: Mutex::new(VecDeque::new()),
            deques: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let sh = Arc::clone(&shared);
            let builder = thread::Builder::new().name(format!("koala-exec-{i}"));
            if let Ok(handle) = builder.spawn(move || worker_loop(sh, i)) {
                workers.push(handle);
            }
            // A failed spawn (resource exhaustion) degrades capacity but
            // not correctness: the caller thread still drives every run.
        }
        Pool { shared, workers }
    }

    /// The logical thread count (workers + caller).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = lock(&self.shared.idle);
            self.shared.idle_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: Mutex<Option<Arc<Pool>>> = Mutex::new(None);

/// The process-global pool, built on first use with [`default_threads`]
/// threads. [`set_threads`] replaces it at runtime.
pub fn pool() -> Arc<Pool> {
    let mut g = lock(&GLOBAL);
    Arc::clone(g.get_or_insert_with(|| Arc::new(Pool::new(default_threads()))))
}

/// Replace the global pool with one of `n` compute threads (min 1). Runs
/// already in flight keep their pool alive until they finish; new runs use
/// the new pool. Tests use this to sweep thread counts within one process.
///
/// Safe to call from concurrent startup paths (e.g. several `koala-serve`
/// front doors spinning up in one process): the swap happens under one lock,
/// and a call whose `n` matches the current pool size is a no-op — repeated
/// or racing identical calls keep the existing workers instead of tearing
/// the pool down and respawning it.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    let mut g = lock(&GLOBAL);
    if g.as_ref().is_some_and(|p| p.threads() == n) {
        return;
    }
    *g = Some(Arc::new(Pool::new(n)));
}

/// Compute-thread count of the global pool (hot-path dispatch reads this
/// to decide serial vs task-graph execution).
pub fn threads() -> usize {
    pool().threads()
}

/// Thread count used for the global pool when nothing has called
/// [`set_threads`]: `KOALA_EXEC_THREADS` if set, else `RAYON_NUM_THREADS`
/// (continuity with the shim the executor replaces), else the host's
/// available parallelism, clamped to `1..=64`.
pub fn default_threads() -> usize {
    let env = std::env::var("KOALA_EXEC_THREADS")
        .ok()
        .or_else(|| std::env::var("RAYON_NUM_THREADS").ok())
        .and_then(|v| v.parse::<usize>().ok());
    let n = env.unwrap_or_else(|| {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    });
    n.clamp(1, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_graph_is_ok() {
        assert!(TaskGraph::new().run_on(&Pool::new(1)).is_ok());
        assert!(TaskGraph::new().run_on(&Pool::new(4)).is_ok());
    }

    #[test]
    fn dependency_chain_orders_side_effects() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let log = Mutex::new(Vec::new());
            let mut g = TaskGraph::new();
            let mut prev: Option<TaskId> = None;
            for i in 0..32usize {
                let deps: Vec<TaskId> = prev.into_iter().collect();
                let log = &log;
                prev = Some(g.add(TaskKind::Reduce, &deps, move || {
                    log.lock().unwrap().push(i);
                    Ok(())
                }));
            }
            g.run_on(&pool).unwrap();
            assert_eq!(*log.lock().unwrap(), (0..32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn counters_sum_exactly() {
        let pool = Pool::new(4);
        let sum = AtomicU64::new(0);
        let mut g = TaskGraph::new();
        for i in 0..100u64 {
            let sum = &sum;
            g.add(TaskKind::Other, &[], move || {
                sum.fetch_add(i, Ordering::Relaxed);
                Ok(())
            });
        }
        g.run_on(&pool).unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
