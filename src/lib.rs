//! Umbrella crate re-exporting the koala-rs stack.
pub use koala_circuit as circuit;
pub use koala_cluster as cluster;
pub use koala_error as error;
pub use koala_exec as exec;
pub use koala_linalg as linalg;
pub use koala_mps as mps;
pub use koala_peps as peps;
pub use koala_serve as serve;
pub use koala_sim as sim;
pub use koala_tensor as tensor;
